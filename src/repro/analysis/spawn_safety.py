"""RPR004 — spawn safety of the multiprocess grid.

``run_grid`` fans ``_SeedTask``s out to ``spawn`` workers, so everything a
task references must be importable and picklable in a fresh interpreter:
grid factories must be module-level functions registered under a stable
name, and the specs (``PolicySpec``/``WorkloadSpec``/``GridSpec``) must
not smuggle lambdas, closures, or local classes across the process
boundary (``WorkloadItem``s never cross it — workers rebuild them from
specs — so closures *inside* factory bodies are fine and are not
flagged).

Flagged:

* ``@register_grid_factory(...)`` on a def that is not at module level;
* assignment into ``GRID_FACTORIES`` anywhere but module level, or of a
  lambda;
* a ``lambda`` anywhere inside a ``PolicySpec``/``WorkloadSpec``/
  ``GridSpec``/``_SeedTask`` construction;
* passing a locally-defined function or class by name into one of those
  constructions.

The process-executor seam (``repro.sim.executor.ProcessExecutor``)
extends the same discipline to its worker protocol: worker processes are
started once per simulation with a module-level target and fed pickled
replica deltas over pipes, so

* ``Process(...)`` constructions whose ``target=`` is a lambda or a
  locally-defined function/class are flagged (spawn cannot import
  them); and
* payloads handed to ``send``/``send_bytes``/``submit``/``pickle.dumps``
  calls must not contain lambdas or locally-defined functions/classes by
  name — those fail to pickle (or, for thread ``submit``, silently stop
  the code being process-portable).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR004"

_REGISTRY_DECORATOR = "register_grid_factory"
_REGISTRY_NAME = "GRID_FACTORIES"
_SPEC_NAMES = {"PolicySpec", "WorkloadSpec", "GridSpec", "_SeedTask"}
#: Worker-process constructions whose ``target=`` must be module-level.
_PROCESS_NAMES = {"Process"}
#: Calls whose argument payloads cross (or must stay portable across) a
#: process boundary: pipe sends, pool submits, explicit pickling.
_SHIP_NAMES = {"send", "send_bytes", "submit", "dumps"}


def _decorator_name(dec: ast.AST) -> Optional[str]:
    if isinstance(dec, ast.Call):
        dec = dec.func
    if isinstance(dec, ast.Name):
        return dec.id
    if isinstance(dec, ast.Attribute):
        return dec.attr
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _local_defs(fn: ast.AST) -> Set[str]:
    """Names of functions/classes defined directly inside ``fn``'s body
    (one level is enough: passing them into a spec is the bug)."""
    out: Set[str] = set()
    for stmt in ast.walk(fn):
        if stmt is fn:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(stmt.name)
    return out


def _check_registrations(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                if _decorator_name(dec) == _REGISTRY_DECORATOR and not isinstance(
                    ctx.parent(node), ast.Module
                ):
                    yield ctx.finding(
                        CODE,
                        node,
                        f"grid factory '{node.name}' is registered below module "
                        "level; spawn workers cannot import it",
                    )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == _REGISTRY_NAME
                ):
                    if isinstance(node.value, ast.Lambda):
                        yield ctx.finding(
                            CODE,
                            node.value,
                            f"lambda assigned into {_REGISTRY_NAME}; lambdas "
                            "do not pickle across spawn",
                        )
                    elif not isinstance(ctx.parent(node), ast.Module):
                        yield ctx.finding(
                            CODE,
                            node,
                            f"{_REGISTRY_NAME} mutated below module level; "
                            "spawn workers will not see the entry",
                        )


def _check_spec_calls(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and _call_name(node) in _SPEC_NAMES):
            continue
        spec = _call_name(node)
        enclosing_fn = ctx.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
        locals_here = _local_defs(enclosing_fn) if enclosing_fn is not None else set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Lambda):
                yield ctx.finding(
                    CODE,
                    sub,
                    f"lambda inside a {spec} construction; grid specs must "
                    "be picklable for spawn workers",
                )
            elif (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in locals_here
            ):
                yield ctx.finding(
                    CODE,
                    sub,
                    f"locally-defined '{sub.id}' inside a {spec} construction; "
                    "spawn workers cannot unpickle non-module-level objects",
                )


def _check_process_seam(ctx: FileContext) -> Iterator[Finding]:
    """The process-executor seam: worker targets and shipped payloads
    must be module-level picklable objects."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        call = _call_name(node)
        enclosing_fn = ctx.enclosing(node, ast.FunctionDef, ast.AsyncFunctionDef)
        locals_here = _local_defs(enclosing_fn) if enclosing_fn is not None else set()
        if call in _PROCESS_NAMES:
            for kw in node.keywords:
                if kw.arg != "target":
                    continue
                if isinstance(kw.value, ast.Lambda):
                    yield ctx.finding(
                        CODE,
                        kw.value,
                        "lambda as a Process target; spawn workers cannot "
                        "import it",
                    )
                elif (
                    isinstance(kw.value, ast.Name)
                    and kw.value.id in locals_here
                ):
                    yield ctx.finding(
                        CODE,
                        kw.value,
                        f"locally-defined '{kw.value.id}' as a Process "
                        "target; spawn workers can only import "
                        "module-level callables",
                    )
        elif call in _SHIP_NAMES:
            for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                for sub in ast.walk(arg):
                    if isinstance(sub, ast.Lambda):
                        yield ctx.finding(
                            CODE,
                            sub,
                            f"lambda in a {call}() payload; objects shipped "
                            "to workers must be picklable",
                        )
                    elif (
                        isinstance(sub, ast.Name)
                        and isinstance(sub.ctx, ast.Load)
                        and sub.id in locals_here
                    ):
                        yield ctx.finding(
                            CODE,
                            sub,
                            f"locally-defined '{sub.id}' in a {call}() "
                            "payload; workers cannot unpickle "
                            "non-module-level objects",
                        )


@register_rule(
    CODE,
    "spawn-safety",
    "grid factories, specs, and worker payloads must be module-level "
    "and picklable",
)
def check_spawn_safety(ctx: FileContext) -> List[Finding]:
    out = list(_check_registrations(ctx))
    out.extend(_check_spec_calls(ctx))
    out.extend(_check_process_seam(ctx))
    return out
