"""File walking, parsing, and rule dispatch.

Each file is parsed once into a :class:`FileContext` carrying the AST, a
child→parent map (rules need to ask "what consumes this expression?"), the
source lines, and the file's *module name*.  The module name drives scoping
decisions (RPR001's sorted-iteration rule applies to ``repro.sim`` /
``repro.policies`` / ``repro.graphs``; RPR003's layer table is keyed on
it), and is derived from the path by locating the innermost ``src`` or
``repro`` component.  Fixture files can override it with a leading
``# repro-lint-module: dotted.name`` comment so the corpus under
``tests/lint_fixtures/`` exercises scoped rules without living in ``src/``.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import (
    META_CODE,
    Finding,
    iter_rules,
    parse_suppressions,
    apply_suppressions,
)

_MODULE_OVERRIDE_RE = re.compile(r"#\s*repro-lint-module:\s*([\w.]+)")

_SKIP_DIRS = {"__pycache__", ".git", ".hg", ".mypy_cache", ".pytest_cache"}


@dataclass
class FileContext:
    """Everything a rule needs about one parsed file."""

    path: str
    module: str
    tree: ast.Module
    lines: List[str]
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self.parents.get(node)
        while cur is not None:
            yield cur
            cur = self.parents.get(cur)

    def enclosing(self, node: ast.AST, *kinds) -> Optional[ast.AST]:
        """The nearest ancestor of one of ``kinds`` (or None)."""
        for anc in self.ancestors(node):
            if isinstance(anc, kinds):
                return anc
        return None

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=code,
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def module_name_for(path: str, lines: Sequence[str]) -> str:
    """The dotted module name of ``path`` (see the module docstring)."""
    for text in lines[:5]:
        m = _MODULE_OVERRIDE_RE.search(text)
        if m is not None:
            return m.group(1)
    norm = path.replace(os.sep, "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    anchor = None
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src") + 1
    elif "repro" in parts:
        anchor = parts.index("repro")
    if anchor is None or anchor >= len(parts):
        return parts[-1] if parts else ""
    return ".".join(parts[anchor:])


def build_parent_map(tree: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    """Expand files/directories to ``.py`` files, deterministically."""
    seen: Set[str] = set()
    for raw in paths:
        if os.path.isdir(raw):
            for dirpath, dirnames, filenames in os.walk(raw):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        full = os.path.join(dirpath, name)
                        if full not in seen:
                            seen.add(full)
                            yield full
        elif raw.endswith(".py"):
            if raw not in seen:
                seen.add(raw)
                yield raw


def load_context(path: str) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse ``path``; on syntax errors return an RPR000 finding instead of
    crashing the whole run."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            code=META_CODE,
            path=path,
            line=exc.lineno or 0,
            col=exc.offset or 0,
            message=f"file does not parse: {exc.msg}",
        )
    ctx = FileContext(
        path=path,
        module=module_name_for(path, lines),
        tree=tree,
        lines=lines,
        parents=build_parent_map(tree),
    )
    return ctx, None


def analyze_file(path: str, select: Optional[Sequence[str]] = None) -> List[Finding]:
    """All (selected) rule findings for one file, suppressions applied.

    Delegates to :func:`analyze_paths` so project-scoped rules run even
    on a single file (the whole-program view is then just that file —
    which is exactly what the fixture corpus exercises)."""
    findings, _ = analyze_paths([path], select=select)
    return findings


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
) -> Tuple[List[Finding], int]:
    """Findings over ``paths`` not grandfathered by ``baseline``; returns
    ``(findings, baseline_suppressed_count)`` in deterministic order.

    Runs in two passes: every file is parsed once and handed to the
    file-scoped rules, then — if any project-scoped rule is selected —
    a single :class:`~repro.analysis.project.ProjectContext` is built
    over all parsed files and each project rule runs once against it.
    Project findings anchor at concrete file/line locations, so the
    per-line suppression and baseline machinery below treats the two
    scopes identically."""
    baseline = baseline or set()
    contexts: List[FileContext] = []
    raw: List[Finding] = []
    for path in iter_python_files(paths):
        ctx, parse_error = load_context(path)
        if ctx is None:
            if parse_error is not None:
                raw.append(parse_error)
            continue
        contexts.append(ctx)
        for rule in iter_rules(select, scope="file"):
            raw.extend(rule.check(ctx))

    project_rules = list(iter_rules(select, scope="project"))
    if project_rules and contexts:
        # Imported lazily: project.py needs FileContext from this module.
        from .project import ProjectContext

        pctx = ProjectContext.build(contexts)
        for rule in project_rules:
            raw.extend(rule.check(pctx))

    suppressions = {
        ctx.path: parse_suppressions(ctx.lines) for ctx in contexts
    }
    by_path: Dict[str, List[Finding]] = {}
    for f in raw:
        by_path.setdefault(f.path, []).append(f)

    out: List[Finding] = []
    grandfathered = 0
    # Union so a file whose only problem is a reasonless noqa (no rule
    # findings at all) still gets its RPR000 meta-finding.
    for path in sorted(set(by_path) | set(suppressions)):
        kept = apply_suppressions(
            by_path.get(path, []), suppressions.get(path, {}), path
        )
        for f in kept:
            if f.fingerprint in baseline:
                grandfathered += 1
            else:
                out.append(f)
    out.sort(key=lambda f: (f.path, f.line, f.col, f.code, f.message))
    return out, grandfathered
