"""RPR009 — merge-barrier discipline on the coordinator side.

The parallel executor's determinism argument needs both halves: workers
must be pure (RPR006/RPR007/RPR008), and the **coordinator** must route
every mutation of executor-visible scheduler state through the blessed
merge path — :meth:`Classifier.apply` (or the serial ``classify``
composition), applied at the barrier in shard-index order.  A stray
coordinator-side write from inside the classify phase — say
``_phase_classify`` poking ``self.cache.runnable`` directly, or an
executor's ``run_classify`` reaching into the live table between
derives — mutates state the in-flight workers were promised is frozen.

The rule checks two families of coordinator entry points with a
**restricted closure** (:meth:`ProjectContext.restricted_effects`):

* ``_phase_classify`` methods, with the sanctioned phase calls
  (``run_classify``, ``take_check_slices``, ``abort``) treated as
  opaque — those are the blessed route into the executor and the
  post-barrier abort path;
* ``run_classify`` methods of ``*Executor`` classes, with the merge
  entrypoints (``apply``, ``classify``, ``derive``) treated as opaque —
  the executor may *schedule* derives and *apply* at the barrier, but
  never mutate scheduler state itself.

What remains in the closure is, by construction, "everything this
coordinator code does *outside* the blessed path".  Any write in it
whose target is executor-visible — a ``self`` chain rooted at one of
the scheduler's layers (``live``/``table``/``graph``/``cache``/``log``/
``classifier``/``metrics``), a mutation through a phase-input parameter
other than the ``aborts`` out-channel, or a module global — is flagged
at the concrete mutation site.  Executor-private accounting
(``self.stats``, pool handles, per-shard buffers) stays invisible to
the scheduler and is deliberately not banned.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

from .core import Finding, register_rule
from .effects import Effect, ROOT_GLOBAL, ROOT_PARAM, ROOT_SELF

CODE = "RPR009"

#: Calls a ``_phase_classify`` body may make without their effects
#: counting against it: the executor hand-off and the post-barrier
#: abort path.
PHASE_SANCTIONED_CALLS = frozenset({"run_classify", "take_check_slices", "abort"})

#: Calls an executor's ``run_classify`` may make: the merge entrypoints.
MERGE_SANCTIONED_CALLS = frozenset({"apply", "classify", "derive"})

#: ``self.<attr>`` roots that are executor-visible scheduler state.
EXECUTOR_VISIBLE_ATTRS = frozenset(
    {"live", "table", "graph", "cache", "log", "classifier", "metrics"}
)

#: Parameters that are sanctioned out-channels (the phase-2 abort list
#: is filled at the barrier and drained by the coordinator afterwards).
OUT_CHANNEL_PARAMS = frozenset({"aborts"})

_KIND_VERB = {"write": "writes", "mutate": "mutates"}


def _banned(eff: Effect) -> bool:
    if not (eff.is_write and eff.shared):
        return False
    if eff.shard_partitioned:
        return False
    if eff.root == ROOT_SELF:
        return bool(eff.chain) and eff.chain[0] in EXECUTOR_VISIBLE_ATTRS
    if eff.root == ROOT_PARAM:
        return eff.name not in OUT_CHANNEL_PARAMS
    return eff.root == ROOT_GLOBAL


def _subjects(pctx) -> List[Tuple[str, FrozenSet[str], str]]:
    """(qualname, sanctioned-call cutoff, contract description)."""
    out: List[Tuple[str, FrozenSet[str], str]] = []
    for qual in sorted(pctx.summaries()):
        summary = pctx.summary(qual)
        info = pctx.table.method_class.get(qual)
        if summary.node.name == "_phase_classify":
            out.append(
                (
                    qual,
                    PHASE_SANCTIONED_CALLS,
                    "the classify phase mutates scheduler state only "
                    "through the executor hand-off and the post-barrier "
                    "abort path",
                )
            )
        elif (
            info is not None
            and info.name.endswith("Executor")
            and summary.node.name == "run_classify"
        ):
            out.append(
                (
                    qual,
                    MERGE_SANCTIONED_CALLS,
                    "executors mutate scheduler state only through the "
                    "merge entrypoints (apply/classify/derive)",
                )
            )
    return out


@register_rule(
    CODE,
    "merge-barrier-discipline",
    "coordinator-side classify code may mutate executor-visible state "
    "only through the sanctioned merge path",
    scope="project",
)
def check_merge_barrier(pctx) -> List[Finding]:
    out: List[Finding] = []
    subjects = _subjects(pctx)
    # One restricted closure per cutoff set, limited to its subjects'
    # reachable subgraph (the whole-program fixpoint is not needed here).
    closures = {}
    for sanctioned in {s for _, s, _ in subjects}:
        roots = [q for q, s, _ in subjects if s == sanctioned]
        closures[sanctioned] = pctx.restricted_effects(sanctioned, roots=roots)
    for qual, sanctioned, contract in subjects:
        effects = sorted(
            closures[sanctioned].get(qual, ()),
            key=lambda e: (e.origin, e.line, e.kind, e.render()),
        )
        for eff in effects:
            if not _banned(eff):
                continue
            via = "" if eff.origin == qual else f" via '{eff.origin}'"
            out.append(
                pctx.finding(
                    CODE,
                    eff.origin if eff.origin in pctx.summaries() else qual,
                    f"'{qual}' {_KIND_VERB[eff.kind]} executor-visible "
                    f"state '{eff.render()}'{via}, outside the sanctioned "
                    f"merge path; {contract}",
                    line=eff.line,
                )
            )
    return out
