"""RPR008 — cross-shard write-write races on the executor's worker side.

Two shard workers run concurrently.  Any attribute both of their code
paths can write — unless the writes are routed through ``_part()`` (each
worker touches only its own shard's partition) or a per-shard buffer
parameter — is a write-write race: last-writer-wins by thread timing,
which breaks byte-identical replay even when each individual write looks
innocent from its own function.

The rule collects the **worker-side roots** — every ``@shard_phase``
callable, plus any function handed to ``.submit(...)`` inside a
``*Executor`` class (a worker entry point that forgot its decorator is
still a worker entry point) — takes each root's fixpoint effect set, and
groups the shared, non-shard-partitioned writes by abstract target
(root kind, root name, attribute chain).  A target written from **two or
more distinct source sites** is flagged at every site: one site alone is
a (transitive) purity problem and already RPR007's finding; two sites on
the same target is the racing pair this rule exists for.

The abstract-target grouping is deliberately name-based: two workers
writing ``shared.tally`` through parameters *named the same* are treated
as racing on the same object.  That is conservative in exactly the
direction the executor's calling convention makes true — every slice is
handed the same frozen phase inputs.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .core import Finding, register_rule
from .effects import ROOT_GLOBAL
from .transitive_purity import is_shard_phase

CODE = "RPR008"


def worker_roots(pctx) -> List[str]:
    """Worker-side entry points: ``@shard_phase`` callables plus
    ``.submit()`` targets inside ``*Executor`` classes."""
    roots: Set[str] = set()
    for qual in sorted(pctx.summaries()):
        summary = pctx.summary(qual)
        if is_shard_phase(summary.node):
            roots.add(qual)
    for qual in sorted(pctx.summaries()):
        info = pctx.table.method_class.get(qual)
        if info is None or not info.name.endswith("Executor"):
            continue
        for site in pctx.summary(qual).calls:
            if site.callee != "submit" or not site.args:
                continue
            desc = site.args[0]
            # The submitted callable: a plain module-level name
            # (root=global, no attribute chain) we can resolve.
            if desc is None or desc[0] != ROOT_GLOBAL or desc[2]:
                continue
            resolved = pctx.table.resolve_global(desc[1])
            if isinstance(resolved, str):
                roots.add(resolved)
    return sorted(roots)


@register_rule(
    CODE,
    "cross-shard-races",
    "no two worker-reachable paths may write the same "
    "non-shard-partitioned attribute",
    scope="project",
)
def check_shard_races(pctx) -> List[Finding]:
    # Abstract target -> {(origin, line, kind)} write sites, and the
    # worker roots that reach it (for the message).
    sites: Dict[Tuple[str, str, Tuple[str, ...]], Set[Tuple[str, int, str]]] = {}
    reaching: Dict[Tuple[str, str, Tuple[str, ...]], Set[str]] = {}
    renders: Dict[Tuple[str, str, Tuple[str, ...]], str] = {}
    for root in worker_roots(pctx):
        for eff in pctx.transitive_effects(root):
            if not (eff.is_write and eff.shared):
                continue
            if eff.shard_partitioned:
                continue
            key = (eff.root, eff.name, eff.chain)
            sites.setdefault(key, set()).add((eff.origin, eff.line, eff.kind))
            reaching.setdefault(key, set()).add(root)
            renders[key] = eff.render()
    out: List[Finding] = []
    for key in sorted(sites):
        racy = sorted(sites[key])
        if len(racy) < 2:
            continue  # one site: RPR007's (transitive purity) territory
        target = renders[key]
        roots = ", ".join(f"'{r}'" for r in sorted(reaching[key]))
        for origin, line, _kind in racy:
            others = ", ".join(
                f"{o}:{ln}" for o, ln, _ in racy if (o, ln) != (origin, line)
            )
            out.append(
                pctx.finding(
                    CODE,
                    origin,
                    f"cross-shard write-write race: '{target}' is written "
                    f"here and at {others}, all reachable from worker-side "
                    f"root(s) {roots}; partition the target with _part() "
                    "or route through per-shard buffers",
                    line=line,
                )
            )
    return out
