"""Findings, the rule registry, suppressions, and baselines.

Rules come in two scopes.  A *file rule* is a function
``(FileContext) -> Iterable[Finding]`` registered under a stable
``RPR0xx`` code; the engine (:mod:`repro.analysis.engine`) parses each
file once and hands every selected file rule the same context.  A
*project rule* (``scope="project"``) is a function
``(ProjectContext) -> Iterable[Finding]`` that runs once per
``analyze_paths`` invocation against the whole-program view — symbol
table, import-resolved call graph, and fixpoint effect summaries
(:mod:`repro.analysis.project`) — and may emit findings in any loaded
file.  Both kinds share the same suppression, baseline, and ordering
machinery: a project finding anchors at a concrete file/line (usually
the offending function's ``def``), so a per-line ``noqa`` and a
baseline fingerprint work on it exactly as they do on file findings.

Suppressions are per line and must carry a reason::

    bad_call()  # repro: noqa[RPR001] shard introspection is read-only

A ``noqa`` with no reason is itself a finding (**RPR000**) — an
undocumented suppression is exactly the reviewer-memory problem this
subsystem replaces.  Baselines grandfather pre-existing findings by
fingerprint so new code is held to the full rule set while old debt is
burned down deliberately.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: Code for meta-findings produced by the engine itself (reasonless noqa,
#: unparsable files).  Not selectable off.
META_CODE = "RPR000"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]\s*(.*)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baselines (line-sensitive on purpose:
        moving grandfathered code re-surfaces it for review)."""
        return f"{self.code}:{self.path}:{self.line}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


#: Valid values of :attr:`Rule.scope`.
RULE_SCOPES = ("file", "project")


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable code, short name, scope, and the check.

    ``scope="file"`` checks receive one :class:`FileContext` per file;
    ``scope="project"`` checks receive the whole-program
    :class:`~repro.analysis.project.ProjectContext` once per run.
    """

    code: str
    name: str
    description: str
    check: Callable[..., Iterable[Finding]] = field(repr=False)
    scope: str = "file"


_REGISTRY: Dict[str, Rule] = {}


def register_rule(code: str, name: str, description: str, scope: str = "file"):
    """Decorator: register ``fn`` as the checker for ``code``."""
    if scope not in RULE_SCOPES:
        raise ValueError(f"unknown rule scope {scope!r}; expected one of {RULE_SCOPES}")

    def deco(fn: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate rule code {code!r}")
        _REGISTRY[code] = Rule(
            code=code, name=name, description=description, check=fn, scope=scope
        )
        return fn

    return deco


#: Alias kept for rule modules that read better as ``@rule(...)``.
rule = register_rule


def all_rules() -> Dict[str, Rule]:
    return dict(_REGISTRY)


def iter_rules(
    select: Optional[Sequence[str]] = None, scope: Optional[str] = None
) -> Iterator[Rule]:
    """Registered rules in code order, optionally filtered to ``select``
    and/or one ``scope`` (``"file"`` / ``"project"``)."""
    wanted = None if not select else set(select)
    if wanted is not None:
        unknown = wanted - set(_REGISTRY) - {META_CODE}
        if unknown:
            raise KeyError(
                f"unknown rule code(s): {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(_REGISTRY))}"
            )
    for code in sorted(_REGISTRY):
        if wanted is not None and code not in wanted:
            continue
        if scope is not None and _REGISTRY[code].scope != scope:
            continue
        yield _REGISTRY[code]


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Suppression:
    line: int
    codes: frozenset
    reason: str


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Suppression]:
    """Per-line ``# repro: noqa[CODE, ...] reason`` markers (1-based)."""
    out: Dict[int, Suppression] = {}
    for i, text in enumerate(lines, start=1):
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        codes = frozenset(c.strip() for c in m.group(1).split(",") if c.strip())
        out[i] = Suppression(line=i, codes=codes, reason=m.group(2).strip())
    return out


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: Dict[int, Suppression],
    path: str,
) -> List[Finding]:
    """Drop suppressed findings; add an RPR000 for each reasonless or
    unused-code-free marker problem (a reasonless noqa is flagged even when
    it suppresses nothing — it is dead weight either way)."""
    kept: List[Finding] = []
    for f in findings:
        sup = suppressions.get(f.line)
        if sup is not None and f.code in sup.codes:
            continue
        kept.append(f)
    for sup in suppressions.values():
        if not sup.reason:
            kept.append(
                Finding(
                    code=META_CODE,
                    path=path,
                    line=sup.line,
                    col=0,
                    message=(
                        "suppression without a reason: write "
                        "'# repro: noqa[CODE] why this is safe'"
                    ),
                )
            )
    return kept


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """Fingerprints grandfathered by ``path`` (empty if absent)."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except FileNotFoundError:
        return set()
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: not a v{BASELINE_VERSION} lint baseline")
    fps = data.get("findings", [])
    if not isinstance(fps, list) or not all(isinstance(x, str) for x in fps):
        raise ValueError(f"{path}: baseline 'findings' must be a list of strings")
    return set(fps)


def save_baseline(path: str, findings: Iterable) -> int:
    """Write the fingerprints of ``findings`` (accepts :class:`Finding`
    objects or pre-computed fingerprint strings, so partial rewrites can
    merge surviving entries back in); returns the count."""
    fps = sorted(
        {f if isinstance(f, str) else f.fingerprint for f in findings}
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump({"version": BASELINE_VERSION, "findings": fps}, fh, indent=2)
        fh.write("\n")
    return len(fps)
