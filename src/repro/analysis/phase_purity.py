"""RPR006 — phase purity of shard-phase callables.

The parallel executor (:mod:`repro.sim.executor`) fans the classify
phase's shard-local slices out to worker threads and merges at a
deterministic barrier.  The whole determinism argument rests on one
static precondition: code that runs on a worker — any callable decorated
``@shard_phase`` — must be *pure* with respect to global scheduler state.
It may read the frozen phase inputs it is handed and write **only** its
per-shard buffer; any other mutation (or any read of ``_Run``/cache/
graph/metrics attributes) races with the coordinator or with sibling
workers and silently breaks byte-identical replay.

The rule is structural, like RPR005: inside every function decorated
``shard_phase`` (bare name or attribute, with or without call parens),

* any attribute access naming a known global-state attribute
  (``cache``, ``graph``, ``metrics``, ``table``, ``dirty``,
  ``runnable``, ``watchers``, ...) is flagged — shard-phase code has no
  business reaching into the scheduler's layers, not even to read;
* any assignment / augmented assignment through an attribute or
  subscript whose root is neither a local variable nor a buffer
  parameter is flagged;
* any mutating method call (``add``, ``append``, ``update``,
  ``pop``, ...) whose receiver root is neither local nor a buffer
  parameter is flagged.

Buffer parameters are recognised by name: ``buf``, ``buffer``, or any
parameter ending in ``_buf``/``_buffer`` — the per-shard buffer API is
the one sanctioned write target.
"""

from __future__ import annotations

import ast
from typing import List, Set

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR006"

_DECORATOR = "shard_phase"

#: Scheduler-layer attribute names a shard-phase callable must not touch
#: (read or write): reaching any of these means the callable navigated
#: into global ``_Run``/cache/graph state instead of its frozen inputs.
_GLOBAL_STATE_ATTRS = {
    "cache",
    "graph",
    "metrics",
    "table",
    "dirty",
    "runnable",
    "watchers",
    "complete",
    "phase1",
    "channel_subs",
    "session_subs",
    "waits_for",
    "blocked_by",
}

#: Method names that mutate their receiver.
_MUTATORS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "remove",
    "setdefault",
    "update",
}


def _is_shard_phase(fn: ast.FunctionDef) -> bool:
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == _DECORATOR:
            return True
        if isinstance(target, ast.Attribute) and target.attr == _DECORATOR:
            return True
    return False


def _buffer_params(fn: ast.FunctionDef) -> Set[str]:
    names = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
    return {
        n
        for n in names
        if n in ("buf", "buffer") or n.endswith(("_buf", "_buffer"))
    }


def _local_names(fn: ast.FunctionDef) -> Set[str]:
    """Names bound inside the function body (assignment targets, loop
    variables, ``with ... as``, walrus, comprehension targets)."""
    out: Set[str] = set()

    def bind(target: ast.AST) -> None:
        # Only direct name bindings count: `run.live[x] = 1` binds
        # nothing (the root `run` stays non-local and gets flagged).
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in ast.walk(fn):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                bind(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
    return out


def _root_name(node: ast.AST) -> object:
    """The leftmost name of an attribute/subscript chain, or None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register_rule(
    CODE,
    "phase-purity",
    "shard-phase callables may only write their per-shard buffer",
)
def check_phase_purity(ctx: FileContext) -> List[Finding]:
    out: List[Finding] = []
    for fn in ast.walk(ctx.tree):
        if not (isinstance(fn, ast.FunctionDef) and _is_shard_phase(fn)):
            continue
        buffers = _buffer_params(fn)
        locals_ = _local_names(fn)

        def sanctioned(root: object) -> bool:
            return root is not None and (root in buffers or root in locals_)

        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _GLOBAL_STATE_ATTRS
            ):
                out.append(
                    ctx.finding(
                        CODE,
                        node,
                        f"shard-phase callable '{fn.name}' touches global "
                        f"scheduler state '.{node.attr}'; workers may only "
                        "read frozen phase inputs and write their per-shard "
                        "buffer",
                    )
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if not isinstance(t, (ast.Attribute, ast.Subscript)):
                        continue
                    if not sanctioned(_root_name(t)):
                        out.append(
                            ctx.finding(
                                CODE,
                                t,
                                f"shard-phase callable '{fn.name}' assigns "
                                "through a non-local, non-buffer target; "
                                "route results through the per-shard buffer",
                            )
                        )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATORS
            ):
                if not sanctioned(_root_name(node.func.value)):
                    out.append(
                        ctx.finding(
                            CODE,
                            node,
                            f"shard-phase callable '{fn.name}' calls mutator "
                            f"'.{node.func.attr}()' on a non-local, "
                            "non-buffer receiver; route results through the "
                            "per-shard buffer",
                        )
                    )
    return out
