"""Symbol table and import-resolved call graph over all loaded files.

The :class:`SymbolTable` indexes every loaded :class:`FileContext`:
module-level functions, classes with their methods and *attribute
types* (inferred from ``__init__`` assignments of annotated parameters,
constructor calls, and class-level annotations — dataclass fields
included), and the module's import bindings (absolute and relative).

The :class:`CallGraph` then resolves each extracted call site to a
function in the table:

* ``self.meth(...)`` through the enclosing class (and its bases,
  depth-first);
* ``self.attr.meth(...)`` / ``param.attr.meth(...)`` through inferred
  **receiver types** — ``self.table = table`` with ``table: LockTable``
  makes ``self.table.blockers(...)`` resolve to ``LockTable.blockers``;
* ``name(...)`` through module-level definitions and import bindings
  (``from .live import LiveEntry`` / ``from ..core import x``), with
  constructor calls resolving to the class's ``__init__`` on a *fresh*
  receiver (so the constructor's ``self.x = ...`` writes do not escape
  into the caller);
* everything else lands in an explicit **unresolved category** —
  ``dynamic`` (called through a parameter or local value, e.g. the
  executor's frozen-input ``derive`` callable), ``external`` (resolves
  outside the analyzed files), ``unknown-name`` / ``unknown-method`` /
  ``unknown-receiver`` — recorded on the function's summary so project
  rules can reason about (and tests can assert) what the analysis did
  *not* see.

Resolution is static and monomorphic: a call through a declared base
type resolves to the base's method, not to runtime overrides (virtual
dispatch on ``admission()`` overrides is RPR002's territory).  All
iteration orders are sorted — the analysis layer is held to the same
determinism bar as the code it checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .effects import (
    CallSite,
    FunctionSummary,
    PURE_BUILTINS,
    UNRESOLVED_DYNAMIC,
    UNRESOLVED_EXTERNAL,
    UNRESOLVED_UNKNOWN_METHOD,
    UNRESOLVED_UNKNOWN_NAME,
    UNRESOLVED_UNKNOWN_RECEIVER,
    extract,
)


@dataclass
class ClassInfo:
    """One class definition: methods, base names, attribute-type hints."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef = field(repr=False)
    #: Base-class names as written (``Name`` / dotted ``a.b`` chains).
    bases: Tuple[str, ...] = ()
    #: Method name -> FunctionSummary qualname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Attribute name -> raw type reference, resolved lazily:
    #: ("ann", ast node) | ("name", dotted string) | ("selfclass", None).
    attr_types: Dict[str, Tuple[str, object]] = field(default_factory=dict)
    #: Decorator names (bare or rightmost attribute), e.g. "shard_phase".
    decorators_by_method: Dict[str, Tuple[str, ...]] = field(
        default_factory=dict
    )


@dataclass
class ModuleInfo:
    """One loaded module: definitions and import bindings."""

    name: str
    path: str
    is_package: bool = False
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level function name -> qualname.
    functions: Dict[str, str] = field(default_factory=dict)
    #: Local binding -> fully-dotted imported target.
    imports: Dict[str, str] = field(default_factory=dict)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _decorator_names(fn: ast.FunctionDef) -> Tuple[str, ...]:
    out: List[str] = []
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            out.append(target.id)
        elif isinstance(target, ast.Attribute):
            out.append(target.attr)
    return tuple(out)


class SymbolTable:
    """Modules, classes, functions, and per-function summaries."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.summaries: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: Qualname -> enclosing ClassInfo (methods only).
        self.method_class: Dict[str, ClassInfo] = {}
        self._attr_type_memo: Dict[Tuple[str, str], Optional[ClassInfo]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence) -> "SymbolTable":
        table = cls()
        for ctx in sorted(contexts, key=lambda c: c.path):
            table._index_file(ctx)
        return table

    def _index_file(self, ctx) -> None:
        module = ModuleInfo(
            name=ctx.module,
            path=ctx.path,
            is_package=ctx.path.replace("\\", "/").endswith("/__init__.py"),
        )
        # Last file wins on module-name collisions (fixture overrides);
        # real trees have unique module names.
        self.modules[ctx.module] = module
        for node in ctx.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        first = alias.name.split(".")[0]
                        module.imports[first] = first
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.imports[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, ast.FunctionDef):
                qual = f"{ctx.module}.{node.name}"
                module.functions[node.name] = qual
                self.summaries[qual] = extract(
                    node, qual, ctx.module, ctx.path
                )
            elif isinstance(node, ast.ClassDef):
                self._index_class(ctx, module, node)

    @staticmethod
    def _import_base(module: ModuleInfo, node: ast.ImportFrom) -> str:
        if not node.level:
            return node.module or ""
        parts = module.name.split(".")
        # ``from . import x`` in a module drops its own final segment;
        # in a package __init__ the package itself is level 1.
        drop = node.level if not module.is_package else node.level - 1
        base_parts = parts[: len(parts) - drop] if drop else parts
        if node.module:
            base_parts = base_parts + node.module.split(".")
        return ".".join(base_parts)

    def _index_class(self, ctx, module: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{ctx.module}.{node.name}"
        info = ClassInfo(
            qualname=qual,
            module=ctx.module,
            name=node.name,
            node=node,
            bases=tuple(
                b for b in (_dotted(base) for base in node.bases) if b
            ),
        )
        module.classes[node.name] = info
        self.classes[qual] = info
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                mqual = f"{qual}.{item.name}"
                info.methods[item.name] = mqual
                info.decorators_by_method[item.name] = _decorator_names(item)
                self.summaries[mqual] = extract(
                    item, mqual, ctx.module, ctx.path
                )
                self.method_class[mqual] = info
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # Class-level annotation (dataclass fields included).
                info.attr_types.setdefault(
                    item.target.id, ("ann", item.annotation)
                )
        init = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "__init__"
            ),
            None,
        )
        if init is not None:
            self._infer_init_attr_types(info, init)

    @staticmethod
    def _infer_init_attr_types(info: ClassInfo, init: ast.FunctionDef) -> None:
        annotations = {
            a.arg: a.annotation
            for a in init.args.posonlyargs + init.args.args + init.args.kwonlyargs
            if a.annotation is not None
        }
        for node in ast.walk(init):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = node.value
            ref: Optional[Tuple[str, object]] = None
            if isinstance(value, ast.Name):
                if value.id == "self":
                    ref = ("selfclass", None)
                elif value.id in annotations:
                    ref = ("ann", annotations[value.id])
            elif isinstance(value, ast.Call):
                name = _dotted(value.func)
                if name is not None:
                    ref = ("name", name)
            if ref is not None:
                info.attr_types.setdefault(target.attr, ref)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_global(self, dotted: str) -> Optional[object]:
        """A fully-qualified dotted name -> ClassInfo | summary qualname
        (str) | ModuleInfo | None."""
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if not rest:
                return mod
            if len(rest) == 1:
                if rest[0] in mod.classes:
                    return mod.classes[rest[0]]
                if rest[0] in mod.functions:
                    return mod.functions[rest[0]]
                # Re-exported name (``from .x import y`` in __init__).
                target = mod.imports.get(rest[0])
                if target is not None and target != dotted:
                    return self.resolve_global(target)
                return None
            if len(rest) == 2 and rest[0] in mod.classes:
                return self.resolve_method(mod.classes[rest[0]], rest[1])
            return None
        return None

    def resolve_name(self, module_name: str, name: str) -> Optional[object]:
        """A (possibly dotted) name as written inside ``module_name``."""
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        parts = name.split(".")
        head = parts[0]
        if head in mod.classes:
            base: Optional[str] = mod.classes[head].qualname
        elif head in mod.functions:
            base = mod.functions[head]
        elif head in mod.imports:
            base = mod.imports[head]
        else:
            return None
        full = ".".join([base] + parts[1:])
        if not parts[1:]:
            if head in mod.classes:
                return mod.classes[head]
            if head in mod.functions:
                return mod.functions[head]
        return self.resolve_global(full)

    def resolve_method(self, info: ClassInfo, name: str) -> Optional[str]:
        """Method qualname via depth-first base-class walk."""
        seen: Set[str] = set()
        stack: List[ClassInfo] = [info]
        while stack:
            cls = stack.pop(0)
            if cls.qualname in seen:
                continue
            seen.add(cls.qualname)
            if name in cls.methods:
                return cls.methods[name]
            for base in cls.bases:
                resolved = self.resolve_name(cls.module, base)
                if isinstance(resolved, ClassInfo):
                    stack.append(resolved)
        return None

    def resolve_annotation(
        self, module_name: str, ann: object
    ) -> Optional[ClassInfo]:
        """An annotation AST -> ClassInfo (Optional[...] unwrapped,
        quoted forward references parsed, subscripted generics skipped)."""
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            head = _dotted(ann.value)
            if head is not None and head.split(".")[-1] == "Optional":
                return self.resolve_annotation(module_name, ann.slice)
            return None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            dotted = _dotted(ann)
            if dotted is None:
                return None
            resolved = self.resolve_name(module_name, dotted)
            return resolved if isinstance(resolved, ClassInfo) else None
        return None

    def attr_type(self, info: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """The inferred class of ``info``'s instance attribute ``attr``
        (base classes consulted)."""
        key = (info.qualname, attr)
        if key in self._attr_type_memo:
            return self._attr_type_memo[key]
        self._attr_type_memo[key] = None  # cycle guard
        result: Optional[ClassInfo] = None
        ref = info.attr_types.get(attr)
        if ref is not None:
            kind, payload = ref
            if kind == "selfclass":
                result = info
            elif kind == "ann":
                result = self.resolve_annotation(info.module, payload)
            elif kind == "name":
                resolved = self.resolve_name(info.module, str(payload))
                if isinstance(resolved, ClassInfo):
                    result = resolved
        if result is None:
            for base in info.bases:
                resolved = self.resolve_name(info.module, base)
                if isinstance(resolved, ClassInfo):
                    result = self.attr_type(resolved, attr)
                    if result is not None:
                        break
        self._attr_type_memo[key] = result
        return result


@dataclass(frozen=True)
class ResolvedCall:
    """One resolved call edge, carrying everything effect propagation
    needs to re-root the callee's effects into the caller's scope."""

    caller: str
    target: str
    line: int
    callee_name: str
    #: Caller-scope receiver descriptor (None = fresh/local receiver:
    #: the callee's self-effects do not escape into the caller).
    receiver: Optional[Tuple[str, str, Tuple[str, ...]]]
    #: Callee parameter -> caller-scope descriptor (or None).
    argmap: Tuple[Tuple[str, Optional[Tuple[str, str, Tuple[str, ...]]]], ...]


class CallGraph:
    """Resolved call edges per caller, plus the reverse index the
    fixpoint worklist walks."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, List[ResolvedCall]] = {}
        self.callers_of: Dict[str, Set[str]] = {}
        self._local_type_memo: Dict[str, Dict[str, ClassInfo]] = {}
        for qual in sorted(table.summaries):
            self._resolve_function(table.summaries[qual])

    # ------------------------------------------------------------------

    def _resolve_function(self, summary: FunctionSummary) -> None:
        out: List[ResolvedCall] = []
        for site in summary.calls:
            resolved = self._resolve_site(summary, site)
            if isinstance(resolved, str):
                summary.unresolved.append((site.callee, site.line, resolved))
            elif resolved is not None:
                out.append(resolved)
                self.callers_of.setdefault(resolved.target, set()).add(
                    summary.qualname
                )
        self.edges[summary.qualname] = out

    def _resolve_site(self, summary: FunctionSummary, site: CallSite):
        """ResolvedCall | unresolved-category string | None (pure)."""
        if site.is_method:
            return self._resolve_method_call(summary, site)
        name = site.callee
        if name in summary.local_binds or name in summary.params:
            return UNRESOLVED_DYNAMIC
        resolved = self.table.resolve_name(summary.module, name)
        if isinstance(resolved, str):
            return self._edge(summary, site, resolved, receiver=None)
        if isinstance(resolved, ClassInfo):
            init = self.table.resolve_method(resolved, "__init__")
            if init is None:
                return None  # default constructor: pure
            # Fresh receiver: the constructed object is new, so the
            # __init__'s self-writes stay invisible to the caller.
            return self._edge(summary, site, init, receiver=None)
        if resolved is not None:
            return None  # a module object: not callable in our model
        mod = self.table.modules.get(summary.module)
        if mod is not None and name in mod.imports:
            return UNRESOLVED_EXTERNAL
        if name in PURE_BUILTINS:
            return None
        return UNRESOLVED_UNKNOWN_NAME

    def _resolve_method_call(self, summary: FunctionSummary, site: CallSite):
        recv_type = self._type_of(summary, site.receiver_expr)
        if recv_type is None:
            # Module-function calls spelled ``mod.fn(...)`` resolve
            # through imports before giving up on the receiver.
            expr = site.receiver_expr
            dotted = _dotted(expr) if expr is not None else None
            if dotted is not None:
                full = self.table.resolve_name(
                    summary.module, f"{dotted}.{site.callee}"
                )
                if isinstance(full, str):
                    return self._edge(summary, site, full, receiver=None)
                if isinstance(full, ClassInfo):
                    init = self.table.resolve_method(full, "__init__")
                    if init is None:
                        return None
                    return self._edge(summary, site, init, receiver=None)
            desc = site.receiver
            if desc is not None and desc[0] == "param":
                return UNRESOLVED_DYNAMIC
            if (
                expr is not None
                and isinstance(expr, ast.Name)
                and (
                    expr.id in summary.local_binds
                    or expr.id in summary.params
                )
            ):
                return UNRESOLVED_DYNAMIC
            return UNRESOLVED_UNKNOWN_RECEIVER
        target = self.table.resolve_method(recv_type, site.callee)
        if target is None:
            return UNRESOLVED_UNKNOWN_METHOD
        return self._edge(summary, site, target, receiver=site.receiver)

    def _edge(
        self,
        summary: FunctionSummary,
        site: CallSite,
        target: str,
        receiver,
    ) -> Optional[ResolvedCall]:
        callee = self.table.summaries.get(target)
        if callee is None:
            return None
        params = list(callee.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        argmap: List[Tuple[str, Optional[Tuple[str, str, Tuple[str, ...]]]]] = []
        for i, desc in enumerate(site.args):
            if i < len(params):
                argmap.append((params[i], desc))
        bound = {p for p, _ in argmap}
        for kw_name, desc in site.kwargs:
            if kw_name in callee.params and kw_name not in bound:
                argmap.append((kw_name, desc))
        return ResolvedCall(
            caller=summary.qualname,
            target=target,
            line=site.line,
            callee_name=site.callee,
            receiver=receiver,
            argmap=tuple(argmap),
        )

    # ------------------------------------------------------------------
    # Receiver-type resolution
    # ------------------------------------------------------------------

    def _local_ctor_types(self, summary: FunctionSummary) -> Dict[str, ClassInfo]:
        """Types of single-assignment locals bound to ``Cls(...)``."""
        memo = self._local_type_memo.get(summary.qualname)
        if memo is not None:
            return memo
        counts: Dict[str, int] = {}
        ctor: Dict[str, str] = {}
        for node in ast.walk(summary.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                t = node.targets[0]
                if isinstance(t, ast.Name):
                    counts[t.id] = counts.get(t.id, 0) + 1
                    if isinstance(node.value, ast.Call):
                        name = _dotted(node.value.func)
                        if name is not None:
                            ctor[t.id] = name
        out: Dict[str, ClassInfo] = {}
        for name, ref in sorted(ctor.items()):
            if counts.get(name, 0) != 1:
                continue
            resolved = self.table.resolve_name(summary.module, ref)
            if isinstance(resolved, ClassInfo):
                out[name] = resolved
        self._local_type_memo[summary.qualname] = out
        return out

    def _type_of(
        self, summary: FunctionSummary, expr: Optional[ast.AST]
    ) -> Optional[ClassInfo]:
        if expr is None:
            return None
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls"):
                return self.table.method_class.get(summary.qualname)
            ann = summary.param_annotations.get(expr.id)
            if ann is not None:
                return self.table.resolve_annotation(summary.module, ann)
            return self._local_ctor_types(summary).get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._type_of(summary, expr.value)
            if base is None:
                return None
            return self.table.attr_type(base, expr.attr)
        return None
