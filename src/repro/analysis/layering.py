"""RPR003 — layering conformance (the docs/ARCHITECTURE.md import DAG).

The repo's layers, bottom to top::

    exceptions < core < graphs < {policies, enumeration} < sim
               < {verify, viz} < bench

with the kernel/service split (PR 9) threaded through the middle:
``repro.kernel`` sits *between* the sim state layers and the drivers —
it may import the state layers it absorbed (lock table, waits-for,
deadlock, admission, live, metrics, event log, executor) but never the
drivers above it (``sim.scheduler``, ``sim.runner``, ``sim.grid``) nor
the reference oracle; ``repro.service`` is a front-end that imports
**only** the kernel (plus ``repro.policies`` for the admission seam) —
the sim state layers reach it exclusively through the kernel's
re-exports.  ``repro.sim`` may import the kernel (the scheduler's
``_Run`` is a kernel driver) but never the service.

Special cases:

* ``sim/reference.py`` is the executable specification — it must stay
  independent of the event-engine internals (``scheduler``, ``admission``,
  ``waits_for``) it is the oracle for, otherwise a bug could propagate to
  both sides of the equivalence suites and cancel out.
* ``repro.analysis`` / ``repro.lint`` import nothing from the rest of
  ``repro``: the linter must not be breakable by the code it checks.

The table below encodes *forbidden* prefixes per module prefix (every
matching rule applies, most specific included).  Relative imports are
resolved against the file's module name before matching.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Tuple

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR003"

_ANALYSIS_FORBIDDEN = (
    "repro.exceptions", "repro.core", "repro.graphs", "repro.policies",
    "repro.enumeration", "repro.sim", "repro.kernel", "repro.service",
    "repro.verify", "repro.viz", "repro.bench",
)

#: (module prefix, forbidden import prefixes).  Every matching row applies.
LAYER_RULES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro.exceptions", (
        "repro.core", "repro.graphs", "repro.policies", "repro.enumeration",
        "repro.sim", "repro.kernel", "repro.service", "repro.verify",
        "repro.viz", "repro.bench", "repro.analysis", "repro.lint",
    )),
    ("repro.core", (
        "repro.graphs", "repro.policies", "repro.enumeration", "repro.sim",
        "repro.kernel", "repro.service", "repro.verify", "repro.viz",
        "repro.bench", "repro.analysis", "repro.lint",
    )),
    ("repro.graphs", (
        "repro.policies", "repro.enumeration", "repro.sim", "repro.kernel",
        "repro.service", "repro.verify", "repro.viz", "repro.bench",
        "repro.analysis", "repro.lint",
    )),
    ("repro.policies", (
        "repro.sim", "repro.kernel", "repro.service", "repro.enumeration",
        "repro.verify", "repro.viz", "repro.bench", "repro.analysis",
        "repro.lint",
    )),
    ("repro.enumeration", (
        "repro.sim", "repro.kernel", "repro.service", "repro.verify",
        "repro.viz", "repro.bench", "repro.analysis", "repro.lint",
    )),
    ("repro.sim", (
        "repro.service", "repro.verify", "repro.viz", "repro.bench",
        "repro.analysis", "repro.lint",
    )),
    ("repro.sim.reference", (
        "repro.sim.scheduler", "repro.sim.admission", "repro.sim.waits_for",
    )),
    # The kernel absorbs sim's *state* layers; the drivers and the
    # reference oracle stay strictly above it.
    ("repro.kernel", (
        "repro.sim.scheduler", "repro.sim.runner", "repro.sim.grid",
        "repro.sim.workloads", "repro.sim.reference", "repro.sim.artifacts",
        "repro.service", "repro.enumeration", "repro.verify", "repro.viz",
        "repro.bench", "repro.analysis", "repro.lint",
    )),
    # The service sees the kernel's API surface and nothing below it.
    ("repro.service", (
        "repro.sim", "repro.core", "repro.graphs", "repro.enumeration",
        "repro.verify", "repro.viz", "repro.bench", "repro.analysis",
        "repro.lint",
    )),
    ("repro.verify", ("repro.bench", "repro.viz", "repro.analysis", "repro.lint")),
    ("repro.viz", ("repro.verify", "repro.bench", "repro.analysis", "repro.lint")),
    ("repro.bench", ("repro.analysis", "repro.lint")),
    ("repro.analysis", _ANALYSIS_FORBIDDEN),
    ("repro.lint", _ANALYSIS_FORBIDDEN),
)


def _matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _resolve_relative(
    ctx: FileContext, node: ast.ImportFrom
) -> Optional[str]:
    """The absolute module an ``ImportFrom`` refers to (None if the
    relative import climbs out of the known package)."""
    if node.level == 0:
        return node.module
    parts = ctx.module.split(".") if ctx.module else []
    is_package = ctx.path.replace("\\", "/").endswith("__init__.py")
    base = parts if is_package else parts[:-1]
    climb = node.level - 1
    if climb > len(base):
        return None
    if climb:
        base = base[:-climb]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _imports(ctx: FileContext) -> Iterator[Tuple[ast.AST, str]]:
    """Every (node, absolute dotted target) imported by the file,
    including per-alias submodule targets of ``from pkg import name``."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(ctx, node)
            if base is None:
                continue
            yield node, base
            for alias in node.names:
                if alias.name != "*":
                    yield node, f"{base}.{alias.name}"


@register_rule(
    CODE,
    "layering",
    "imports must follow the docs/ARCHITECTURE.md layer DAG",
)
def check_layering(ctx: FileContext) -> List[Finding]:
    forbidden: List[Tuple[str, str]] = []
    for prefix, banned in LAYER_RULES:
        if _matches(ctx.module, prefix):
            forbidden.extend((prefix, b) for b in banned)
    if not forbidden:
        return []
    out: List[Finding] = []
    seen = set()
    for node, target in _imports(ctx):
        for layer, banned in forbidden:
            if _matches(target, banned):
                key = (node.lineno, banned)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    ctx.finding(
                        CODE,
                        node,
                        f"layer '{layer}' must not import '{banned}' "
                        f"(imports {target})",
                    )
                )
                break
    return out
