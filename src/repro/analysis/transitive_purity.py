"""RPR007 — *transitive* phase purity of shard-phase callables.

RPR006 checks the shard-locality contract one function body deep: a
``@shard_phase`` callable may not itself write anything but its
per-shard buffer.  The hole it cannot see is a pure-looking wrapper
calling an impure helper — possibly in another module — whose mutation
then runs on a shard worker anyway.  This rule closes it with the
whole-program view: for every worker-side root (any ``@shard_phase``
callable, plus :meth:`Classifier.derive` — the undecorated pure-read
half the executor fans out), the **fixpoint effect set**
(:class:`~repro.analysis.project.ProjectContext`) must contain no
shared-state write or mutator.

Division of labour with RPR006: effects whose *origin* is the root
itself (a direct write in the decorated body) are RPR006's finding and
are skipped here — RPR007 flags only callee-carried effects, so a
violation is reported exactly once, by the rule that can point at the
right contract.  ``Classifier.derive`` has no decorator for RPR006 to
key on, so for ``derive`` roots direct effects are flagged here too.

Effects routed through ``_part()`` (the shard router: the receiver is
one shard's own partition) and writes through recognised per-shard
buffer parameters are sanctioned, exactly as in RPR006/RPR005.
"""

from __future__ import annotations

import ast
from typing import List

from .core import Finding, register_rule

CODE = "RPR007"

_DECORATOR = "shard_phase"

_KIND_VERB = {"write": "writes", "mutate": "mutates"}


def is_shard_phase(fn: ast.FunctionDef) -> bool:
    """Decorated ``@shard_phase`` (bare name or attribute, with or
    without call parens) — the same detection RPR006 uses."""
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == _DECORATOR:
            return True
        if isinstance(target, ast.Attribute) and target.attr == _DECORATOR:
            return True
    return False


def worker_purity_roots(pctx) -> List[tuple]:
    """(qualname, is_decorated) for every function held to the worker
    purity contract: ``@shard_phase`` callables and ``derive`` methods
    of ``Classifier`` classes."""
    roots: List[tuple] = []
    for qual in sorted(pctx.summaries()):
        summary = pctx.summary(qual)
        if is_shard_phase(summary.node):
            roots.append((qual, True))
            continue
        info = pctx.table.method_class.get(qual)
        if (
            info is not None
            and summary.node.name == "derive"
            and info.name.endswith("Classifier")
        ):
            roots.append((qual, False))
    return roots


@register_rule(
    CODE,
    "transitive-phase-purity",
    "shard-phase callables must be transitively pure: no shared-state "
    "write or mutator anywhere in their call graph",
    scope="project",
)
def check_transitive_purity(pctx) -> List[Finding]:
    out: List[Finding] = []
    for qual, decorated in worker_purity_roots(pctx):
        effects = sorted(
            pctx.transitive_effects(qual),
            key=lambda e: (e.origin, e.line, e.kind, e.render()),
        )
        for eff in effects:
            if not (eff.is_write and eff.shared):
                continue
            if eff.shard_partitioned:
                continue
            if decorated and eff.origin == qual:
                continue  # a direct write in the decorated body: RPR006's finding
            via = (
                ""
                if eff.origin == qual
                else f" via '{eff.origin}' (line {eff.line})"
            )
            out.append(
                pctx.finding(
                    CODE,
                    qual,
                    f"worker-side callable '{qual}' must be pure but "
                    f"transitively {_KIND_VERB[eff.kind]} shared state "
                    f"'{eff.render()}'{via}; route results through the "
                    "per-shard buffer",
                )
            )
    return out
