"""RPR005 — shard safety of the lock table.

The ROADMAP's parallel-shards item will run shard-local lock-table
operations concurrently.  The precondition it relies on: a method that
operates on one shard (everything routed through ``_part(entity)``) must
not read the shard array ``_parts`` directly — cross-shard state may only
be reached through the declared global indexes (the sorted held index
``_held`` / ``_waiting_on``), which stay under the single coordinator.

The rule is structural: in any class that defines both a ``_part`` method
and a ``_parts`` attribute (i.e. a sharded container), reading
``self._parts`` anywhere except ``__init__`` or ``_part`` itself is
flagged.  Genuinely global, read-only introspection (e.g. draining every
shard for a debug snapshot) is suppressed inline with a reason, which
doubles as the audit trail for the future parallel executor.
"""

from __future__ import annotations

import ast
from typing import List

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR005"

_ROUTER = "_part"
_SHARD_ARRAY = "_parts"
_ALLOWED_METHODS = {"__init__", _ROUTER}


def _is_sharded_class(cls: ast.ClassDef) -> bool:
    has_router = any(
        isinstance(item, ast.FunctionDef) and item.name == _ROUTER
        for item in cls.body
    )
    if not has_router:
        return False
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == _SHARD_ARRAY
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


@register_rule(
    CODE,
    "shard-safety",
    "shard-local methods must not read cross-shard state directly",
)
def check_shard_safety(ctx: FileContext) -> List[Finding]:
    out: List[Finding] = []
    for cls in ast.walk(ctx.tree):
        if not (isinstance(cls, ast.ClassDef) and _is_sharded_class(cls)):
            continue
        for method in cls.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            if method.name in _ALLOWED_METHODS:
                continue
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Attribute)
                    and node.attr == _SHARD_ARRAY
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    out.append(
                        ctx.finding(
                            CODE,
                            node,
                            f"{cls.name}.{method.name} reads the shard array "
                            f"'{_SHARD_ARRAY}' directly; cross-shard state is "
                            "only reachable via the global sorted held index",
                        )
                    )
    return out
