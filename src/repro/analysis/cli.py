"""The ``python -m repro.lint`` command line.

Exit codes: ``0`` clean (baseline-grandfathered findings do not fail the
run), ``1`` findings, ``2`` usage errors.  ``--format json`` emits a
stable machine-readable document for CI; ``--format github`` emits
GitHub Actions workflow commands (``::error file=...,line=...::``) so
findings annotate the PR diff; ``--write-baseline`` snapshots the
current findings so a newly-adopted rule can be burned down
incrementally instead of blocking the tree.

``--write-baseline`` composes with ``--select``: only the selected
rules' entries are rewritten, and existing baseline entries for
*unselected* rules are merged back in unchanged (snapshotting one new
rule must not silently un-grandfather every other rule's debt).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .core import Finding, all_rules, load_baseline, save_baseline
from .engine import analyze_paths

DEFAULT_BASELINE = "lint_baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Project-specific static analysis (RPR001-RPR009).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "github"),
        default="human",
        help="output format (default: human); 'github' emits Actions "
        "::error annotations",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RPR0xx",
        help="only run these rule codes (repeatable, comma-separable)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        metavar="PATH",
        help=f"baseline file of grandfathered findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline file entirely",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rule codes and exit",
    )
    return parser


def _parse_select(raw: Optional[Sequence[str]]) -> Optional[List[str]]:
    if not raw:
        return None
    out: List[str] = []
    for chunk in raw:
        out.extend(c.strip() for c in chunk.split(",") if c.strip())
    return out


def _github_escape(value: str) -> str:
    """Escape a workflow-command message per the Actions spec."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(finding: Finding) -> str:
    """One GitHub Actions ``::error`` annotation for ``finding``."""
    return (
        f"::error file={_github_escape(finding.path)},"
        f"line={finding.line},col={finding.col},"
        f"title={_github_escape(finding.code)}::"
        f"{_github_escape(finding.message)}"
    )


def merged_baseline_fingerprints(
    existing: "set[str]", findings: Sequence[Finding], select: Optional[Sequence[str]]
) -> "set[str]":
    """Fingerprints for a baseline rewrite: the current findings, plus —
    when ``--select`` restricted the run — the existing entries of every
    *unselected* rule, carried over unchanged (a selective snapshot must
    not discard the other rules' grandfathered debt)."""
    fps = {f.fingerprint for f in findings}
    if select:
        selected = set(select)
        fps |= {fp for fp in existing if fp.split(":", 1)[0] not in selected}
    return fps


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for code, rule in sorted(all_rules().items()):
            print(f"{code}  {rule.name}: {rule.description}")
        return 0

    try:
        select = _parse_select(args.select)
        baseline = set() if args.no_baseline else load_baseline(args.baseline)
        if args.write_baseline:
            findings, _ = analyze_paths(args.paths, select=select)
            fps = merged_baseline_fingerprints(baseline, findings, select)
            count = save_baseline(args.baseline, fps)
            print(f"wrote {count} finding(s) to {args.baseline}")
            return 0
        findings, grandfathered = analyze_paths(
            args.paths, select=select, baseline=baseline
        )
    except (KeyError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        counts: dict = {}
        for f in findings:
            counts[f.code] = counts.get(f.code, 0) + 1
        print(
            json.dumps(
                {
                    "version": 1,
                    "findings": [f.as_dict() for f in findings],
                    "counts": counts,
                    "baseline_suppressed": grandfathered,
                },
                indent=2,
            )
        )
    elif args.format == "github":
        for f in findings:
            print(render_github(f))
        suffix = f" ({grandfathered} baseline-grandfathered)" if grandfathered else ""
        print(f"{len(findings)} finding(s){suffix}")
    else:
        for f in findings:
            print(f.render())
        suffix = f" ({grandfathered} baseline-grandfathered)" if grandfathered else ""
        print(f"{len(findings)} finding(s){suffix}")
    return 1 if findings else 0
