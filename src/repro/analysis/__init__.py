"""``repro.analysis`` — project-specific static analysis (the lint layer).

The equivalence suites prove the event engine, sharded lock table, and
multiprocess grid byte-identical to the naive reference — but only for the
seeds they run.  The rules that make determinism *structural* (sorted
iteration on order-reaching paths, the invalidation-channel protocol, the
layer DAG, spawn-safe grid specs, shard-local lock-table access) live here
as machine-checked contracts:

* **RPR001** — determinism hazards (unsorted set iteration, bare
  ``random.*``, wall-clock reads, ordering via ``id()``);
* **RPR002** — invalidation-protocol conformance
  (``admission_dependencies`` vs ``notify_changed``);
* **RPR003** — layering (the docs/ARCHITECTURE.md import DAG);
* **RPR004** — spawn safety (grid specs must be picklable);
* **RPR005** — shard safety (no cross-shard reads on shard-local paths);
* **RPR006** — phase purity (shard-phase callables write only their
  per-shard buffer; the merge barrier's static precondition).

Three rules are *project-scoped*: they run once per ``analyze_paths``
invocation against a whole-program :class:`ProjectContext` — a symbol
table over every loaded file, an import-resolved call graph, and
per-function effect summaries propagated to a fixpoint — instead of one
file at a time:

* **RPR007** — transitive phase purity (a shard-phase callable whose
  *callees*, anywhere in the call graph, write shared state — the hole
  RPR006's one-body-deep check cannot see);
* **RPR008** — cross-shard write-write races (two worker-reachable
  paths writing the same non-shard-partitioned attribute);
* **RPR009** — merge-barrier discipline (coordinator-side classify code
  mutating executor-visible state outside ``apply``/the merge path).

Run as ``python -m repro.lint [paths] [--format human|json|github]``.  This package
imports nothing from the rest of ``repro`` (enforced by RPR003 on itself),
so the linter can never be broken by the code it checks.
"""

from .core import (
    Finding,
    Rule,
    all_rules,
    iter_rules,
    load_baseline,
    register_rule,
    rule,
    save_baseline,
)
from .engine import FileContext, analyze_file, analyze_paths, iter_python_files
from .project import ProjectContext

# Importing the rule modules registers their rules.
from . import determinism  # noqa: F401  (registration import)
from . import invalidation  # noqa: F401  (registration import)
from . import layering  # noqa: F401  (registration import)
from . import spawn_safety  # noqa: F401  (registration import)
from . import shard_safety  # noqa: F401  (registration import)
from . import phase_purity  # noqa: F401  (registration import)
from . import transitive_purity  # noqa: F401  (registration import)
from . import shard_races  # noqa: F401  (registration import)
from . import merge_barrier  # noqa: F401  (registration import)

__all__ = [
    "Finding",
    "ProjectContext",
    "Rule",
    "FileContext",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
    "iter_rules",
    "load_baseline",
    "register_rule",
    "rule",
    "save_baseline",
]
