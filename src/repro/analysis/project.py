"""The whole-program view handed to project-scoped rules.

A :class:`ProjectContext` is built once per ``analyze_paths`` run from
all successfully-parsed :class:`FileContext`s.  It holds:

* the :class:`~repro.analysis.callgraph.SymbolTable` (modules, classes,
  attribute types, per-function direct summaries),
* the resolved :class:`~repro.analysis.callgraph.CallGraph`, and
* **transitive effect sets** — each function's direct effects unioned
  with every resolved callee's effects re-rooted into its scope,
  propagated to a fixpoint.

The fixpoint is a reverse-edge worklist: when a function's effect set
grows, its callers are requeued.  Termination is guaranteed because the
effect lattice is finite — chains are truncated at
:data:`~repro.analysis.effects.MAX_CHAIN`, roots and names are drawn
from the program text — and the per-function set only ever grows.

:func:`propagate` is exposed separately (with a ``skip_call_names``
cutoff) so rules can recompute restricted closures: RPR009 walks the
coordinator's phase methods while treating the sanctioned merge
entrypoints (``apply``/``run_classify``/...) as opaque, which is exactly
"what does this code touch *outside* the blessed path".
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence

from .callgraph import CallGraph, ResolvedCall, SymbolTable
from .core import Finding
from .effects import Effect, FunctionSummary, map_effect


def propagate(
    summaries: Mapping[str, FunctionSummary],
    edges: Mapping[str, Sequence[ResolvedCall]],
    skip_call_names: FrozenSet[str] = frozenset(),
    roots: Optional[Iterable[str]] = None,
) -> Dict[str, FrozenSet[Effect]]:
    """Fixpoint of effect sets over the call graph.

    ``skip_call_names`` names callee *call-site spellings* (the
    rightmost name as written, e.g. ``"apply"``) whose edges are not
    followed — the callee is treated as effect-free for this closure.

    ``roots`` restricts the computation to the functions reachable from
    the given qualnames (restricted closures only need their subjects'
    downstream subgraph, not the whole program).
    """
    if roots is None:
        scope = set(summaries)
    else:
        scope = set()
        frontier = [q for q in roots if q in summaries]
        while frontier:
            qual = frontier.pop()
            if qual in scope:
                continue
            scope.add(qual)
            for edge in edges.get(qual, ()):
                if edge.callee_name in skip_call_names:
                    continue
                if edge.target in summaries:
                    frontier.append(edge.target)

    state: Dict[str, set] = {
        qual: set(summaries[qual].effects) for qual in scope
    }
    callers_of: Dict[str, List[str]] = {}
    for caller in sorted(scope):
        for edge in edges.get(caller, ()):
            if edge.callee_name in skip_call_names:
                continue
            callers_of.setdefault(edge.target, []).append(caller)

    # Per (caller, edge) count of callee effects already mapped: an edge
    # whose callee set hasn't grown since last time maps nothing new.
    processed: Dict[tuple, int] = {}

    def absorb(caller: str) -> bool:
        grew = False
        mine = state[caller]
        for i, edge in enumerate(edges.get(caller, ())):
            if edge.callee_name in skip_call_names:
                continue
            callee_effects = state.get(edge.target)
            if not callee_effects:
                continue
            if processed.get((caller, i)) == len(callee_effects):
                continue
            argmap = dict(edge.argmap)
            # Snapshot: on a self-recursive edge the callee's set IS the
            # caller's set being grown.
            snapshot = tuple(callee_effects)
            processed[(caller, i)] = len(snapshot)
            for eff in snapshot:
                mapped = map_effect(eff, edge.receiver, argmap)
                if mapped is not None and mapped not in mine:
                    mine.add(mapped)
                    grew = True
        return grew

    # Seed deterministically, then chase growth through reverse edges.
    worklist = deque(sorted(state))
    queued = set(worklist)
    while worklist:
        qual = worklist.popleft()
        queued.discard(qual)
        if absorb(qual):
            for caller in callers_of.get(qual, ()):
                if caller in state and caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return {qual: frozenset(effs) for qual, effs in state.items()}


class ProjectContext:
    """Symbol table + call graph + transitive effects for one run."""

    def __init__(
        self,
        contexts: Sequence,
        table: SymbolTable,
        graph: CallGraph,
        transitive: Dict[str, FrozenSet[Effect]],
    ) -> None:
        self.contexts = list(contexts)
        self.table = table
        self.graph = graph
        self._transitive = transitive

    @classmethod
    def build(cls, contexts: Sequence) -> "ProjectContext":
        table = SymbolTable.build(contexts)
        graph = CallGraph(table)
        transitive = propagate(table.summaries, graph.edges)
        return cls(contexts, table, graph, transitive)

    # ------------------------------------------------------------------

    def summaries(self) -> Dict[str, FunctionSummary]:
        return self.table.summaries

    def summary(self, qualname: str) -> Optional[FunctionSummary]:
        return self.table.summaries.get(qualname)

    def transitive_effects(self, qualname: str) -> FrozenSet[Effect]:
        """The function's fixpoint effect set (empty for unknown names)."""
        return self._transitive.get(qualname, frozenset())

    def restricted_effects(
        self,
        skip_call_names: Iterable[str],
        roots: Optional[Iterable[str]] = None,
    ) -> Dict[str, FrozenSet[Effect]]:
        """A fresh closure that does not follow edges to the named
        callees (see :func:`propagate`); ``roots`` limits it to their
        reachable subgraph."""
        return propagate(
            self.table.summaries,
            self.graph.edges,
            frozenset(skip_call_names),
            roots=roots,
        )

    def finding(
        self,
        code: str,
        qualname: str,
        message: str,
        line: Optional[int] = None,
    ) -> Finding:
        """A finding anchored at ``qualname``'s source location (or an
        explicit ``line`` inside its file) so suppressions and baselines
        treat project findings exactly like file findings."""
        summary = self.table.summaries[qualname]
        return Finding(
            code=code,
            path=summary.path,
            line=line if line is not None else summary.line,
            col=0,
            message=message,
        )
