"""RPR002 — invalidation-protocol conformance.

The admission cache re-checks a blocked dynamic session only when one of
its declared channels (``PolicySession.admission_dependencies``) is
notified (``PolicyContext.notify_changed``).  A mutation that can change
an admission verdict but is never notified leaves sessions parked on stale
verdicts — the exact bug class PRs 2–3 fixed by hand in ``ddag.py`` and
``altruistic.py``.

The check is module-local and conservative:

1. A *declaring class* is any class whose ``admission_dependencies``
   method can return something other than ``None``.
2. The *shared-read set* is the attribute names such a class's
   ``admission`` / ``admission_dependencies`` read through anything other
   than bare ``self`` (``self.context.tombstones`` → ``tombstones``,
   ``other.donated`` → ``donated``), expanded to a fixpoint through
   module-local properties/methods they consult (``reached_locked_point``
   → ``locked_past``, ``_items``); inside expanded bodies *all* reads
   count, because their ``self`` is another object at the call site.
3. Every method of every class in the module (except ``__init__``) that
   mutates a shared attribute — a mutator call like ``.add``/``.pop``/
   ``.add_edge``, an assignment, or a subscript store whose target chain
   ends in a shared name — must contain at least one call that
   (transitively, module-locally) reaches ``notify_changed``.  Methods
   with zero notifications get one finding per mutation site.

Intentional exceptions (a mutation provably unable to change any verdict)
are suppressed inline with a reason, which is the documentation the
protocol previously lacked.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .core import Finding, register_rule
from .engine import FileContext

CODE = "RPR002"

_MUTATORS = {
    "add", "discard", "remove", "update", "clear", "pop", "popitem",
    "append", "extend", "insert", "setdefault",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "add_edge", "remove_edge", "add_node", "remove_node",
    "add_root", "add_child", "join", "delete_node",
}

_NOTIFY_ROOTS = {"notify_changed"}

_ADMISSION_METHODS = ("admission", "admission_dependencies")


def _attr_chain(node: ast.AST) -> List[str]:
    """Attribute names of a ``Name.a.b.c`` chain (empty if not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.reverse()
        return parts
    return []


def _returns_non_none(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Constant) and node.value.value is None:
                continue
            return True
    return False


def _methods(cls: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, ast.FunctionDef)
    }


def _called_names(fn: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name):
                out.add(node.func.id)
            elif isinstance(node.func, ast.Attribute):
                out.add(node.func.attr)
    return out


def _notifying_names(ctx: FileContext) -> Set[str]:
    """Module-local function/method names that (transitively) call
    ``notify_changed`` — e.g. ``wake_changed``."""
    bodies: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.FunctionDef):
            bodies.setdefault(node.name, []).append(node)
    notify = set(_NOTIFY_ROOTS)
    changed = True
    while changed:
        changed = False
        for name, fns in bodies.items():
            if name in notify:
                continue
            for fn in fns:
                if _called_names(fn) & notify:
                    notify.add(name)
                    changed = True
                    break
    return notify


def _reads(
    fn: ast.FunctionDef, *, include_bare_self: bool
) -> Tuple[Set[str], Set[str]]:
    """(attribute names read, member names consulted for expansion).

    A read through bare ``self`` only counts when ``include_bare_self``
    (expanded property bodies — their ``self`` is another object at the
    call site).  Every attribute/method touched is an expansion candidate.
    """
    reads: Set[str] = set()
    consulted: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            consulted.add(node.attr)
            receiver_is_bare_self = (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            )
            if include_bare_self or not receiver_is_bare_self:
                reads.add(node.attr)
    return reads, consulted


def _shared_read_set(ctx: FileContext, declaring: List[ast.ClassDef]) -> Set[str]:
    member_defs: Dict[str, List[ast.FunctionDef]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            for name, fn in _methods(node).items():
                member_defs.setdefault(name, []).append(fn)

    shared: Set[str] = set()
    pending: List[str] = []
    expanded: Set[str] = set()

    for cls in declaring:
        methods = _methods(cls)
        for mname in _ADMISSION_METHODS:
            fn = methods.get(mname)
            if fn is None:
                continue
            reads, consulted = _reads(fn, include_bare_self=False)
            shared |= reads
            pending.extend(consulted)

    while pending:
        name = pending.pop()
        if name in expanded or name not in member_defs:
            continue
        if name in _ADMISSION_METHODS or name == "__init__":
            continue
        expanded.add(name)
        for fn in member_defs[name]:
            reads, consulted = _reads(fn, include_bare_self=True)
            shared |= reads
            pending.extend(consulted)
    return shared


def _mutations(fn: ast.FunctionDef, shared: Set[str]) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                chain = _attr_chain(node.func.value)
                if chain and chain[-1] in shared:
                    yield node, chain[-1]
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    chain = _attr_chain(target)
                elif isinstance(target, ast.Subscript):
                    chain = _attr_chain(target.value)
                else:
                    continue
                if chain and chain[-1] in shared:
                    yield target, chain[-1]


@register_rule(
    CODE,
    "invalidation-protocol",
    "writes to admission-dependency state must pair with notify_changed",
)
def check_invalidation(ctx: FileContext) -> List[Finding]:
    declaring = [
        node
        for node in ast.walk(ctx.tree)
        if isinstance(node, ast.ClassDef)
        and "admission_dependencies" in _methods(node)
        and _returns_non_none(_methods(node)["admission_dependencies"])
    ]
    if not declaring:
        return []
    shared = _shared_read_set(ctx, declaring)
    notify = _notifying_names(ctx)

    out: List[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for name, fn in _methods(node).items():
            if name == "__init__":
                continue
            sites = list(_mutations(fn, shared))
            if not sites:
                continue
            if _called_names(fn) & notify:
                continue
            for site, attr in sites:
                out.append(
                    ctx.finding(
                        CODE,
                        site,
                        f"{node.name}.{name} mutates admission-dependency "
                        f"state '{attr}' with no notify_changed on any path",
                    )
                )
    return out
