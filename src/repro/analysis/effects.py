"""Per-function effect summaries: the atoms of whole-program analysis.

A function's *direct* effect summary is extracted syntactically from its
body: every attribute/global **read**, **write** (plain, augmented, and
annotated assignment through an attribute or subscript target, plus
``dict[k] = v`` stores), and **mutator call** (``.append``, ``.add``,
``.update``, ``x[k] = v``, ...) whose receiver *escapes* the function —
its root is ``self``, a parameter, or a module-level name rather than a
local binding.  Mutations of locals are invisible to callers and carry
no effect; writes through a recognised *per-shard buffer* parameter
(``buf``/``buffer``/``*_buf``/``*_buffer`` — the same sanction RPR006
uses) are the one blessed output channel of shard-phase code and are
likewise not effects.

Summaries are deliberately **alias-light**: the only aliasing tracked is
single-assignment locals bound to a plain attribute chain
(``d = self.cache.dirty; d.add(x)`` is a ``self.cache.dirty`` mutation).
Everything else (loop variables over shared containers, tuple unpacking
of shared state) is treated as local — the same blind spot RPR006 has,
documented rather than guessed at.

The *conservative fallback* for calls the project call graph cannot
resolve: a call whose **method name is a known mutator** is classified
as a mutation of its receiver chain regardless of whether the callee was
resolved — ``handle.update(x)`` on an unknown ``handle`` counts.
Non-mutator unresolved calls are recorded (with a category) on the
summary so project rules can surface them, but contribute no effects;
treating every unresolved call as impure would flag the executor's own
``derive(entry)`` frozen-input callable and drown the signal.

:mod:`repro.analysis.project` maps these summaries through the call
graph to a fixpoint (re-rooting callee effects into caller scope), which
is what gives every function its *transitive* read/write effect set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Effect kinds.
READ = "read"
WRITE = "write"
MUTATE = "mutate"

#: Root categories of an effect's receiver chain.
ROOT_SELF = "self"
ROOT_PARAM = "param"
ROOT_GLOBAL = "global"

#: Roots that make an effect *shared* (observable outside the function).
SHARED_ROOTS = (ROOT_SELF, ROOT_PARAM, ROOT_GLOBAL)

#: Chain element standing in for a subscript hop (``x[k].y`` → ("[]", "y")).
SUBSCRIPT = "[]"
#: Chain element standing in for an intermediate call hop
#: (``self._part(e).holders`` → ("_part()", "holders")) — chains routed
#: through the shard router are recognisably shard-partitioned.
CALL_SUFFIX = "()"
#: Sentinel appended when a chain is truncated at :data:`MAX_CHAIN`.
ELLIPSIS = "…"

#: Chains longer than this are truncated (with :data:`ELLIPSIS`), which
#: bounds the effect lattice and guarantees fixpoint convergence on
#: recursive/cyclic call graphs (``self.child.walk()`` style recursion
#: would otherwise grow chains forever).  Three hops cover every chain
#: the rules key on (``self.cache.runnable``, ``_part().holders[...]``)
#: while keeping the truncated lattice small enough that recursive
#: AST-walker-style code (whose re-rooted chains otherwise enumerate
#: every word over its field names) converges in milliseconds.
MAX_CHAIN = 3

#: Method names that mutate their receiver (superset of the RPR006 and
#: RPR002 lists: one shared vocabulary for the whole analysis layer).
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend", "insert",
    "pop", "popitem", "popleft", "remove", "setdefault", "update",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "add_edge", "remove_edge", "add_node", "remove_node",
    "add_root", "add_child", "join", "delete_node", "sort", "reverse",
})

#: Unresolved-call categories (:class:`CallSite.unresolved`).
UNRESOLVED_DYNAMIC = "dynamic"        # call through a parameter/local value
UNRESOLVED_EXTERNAL = "external"      # resolves outside the analyzed files
UNRESOLVED_UNKNOWN_NAME = "unknown-name"
UNRESOLVED_UNKNOWN_METHOD = "unknown-method"
UNRESOLVED_UNKNOWN_RECEIVER = "unknown-receiver"

#: Builtins treated as pure (reads of their arguments at most).
PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bool", "callable", "dict", "divmod", "enumerate",
    "filter", "float", "format", "frozenset", "getattr", "hasattr", "hash",
    "id", "int", "isinstance", "issubclass", "iter", "len", "list", "map",
    "max", "min", "next", "object", "print", "range", "repr", "reversed",
    "round", "set", "sorted", "str", "sum", "tuple", "type", "zip",
})


@dataclass(frozen=True)
class Effect:
    """One abstract effect: ``kind`` access to ``root``-rooted ``chain``.

    ``name`` is the parameter name (``ROOT_PARAM``), the module-qualified
    global (``ROOT_GLOBAL``), or ``"self"``.  ``origin``/``line`` locate
    the concrete source site the effect was extracted from — they survive
    re-rooting through call edges, so a transitive effect always points
    back at the code that performs the write.
    """

    kind: str
    root: str
    name: str
    chain: Tuple[str, ...]
    origin: str
    line: int

    def render(self) -> str:
        base = self.name if self.root != ROOT_SELF else "self"
        return ".".join((base,) + self.chain)

    @property
    def shared(self) -> bool:
        return self.root in SHARED_ROOTS

    @property
    def is_write(self) -> bool:
        return self.kind in (WRITE, MUTATE)

    @property
    def shard_partitioned(self) -> bool:
        """Whether the chain is routed through the shard router — a
        ``_part()`` hop means the receiver is one shard's partition, not
        cross-shard shared state."""
        return any(c == "_part" + CALL_SUFFIX for c in self.chain)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body, pre-resolution.

    ``receiver`` is the (root, name, chain) descriptor of the receiver
    expression for attribute calls (``None`` for plain-name calls and
    unresolvable receivers); ``args``/``kwargs`` carry the same
    descriptors for plain name/attribute-chain arguments (``None`` for
    anything more complex — a literal, a call result, a comprehension —
    whose mutation cannot alias caller state)."""

    callee: str                       # rightmost name: the function/method
    line: int
    is_method: bool                   # attribute call (x.m()) vs name call
    receiver: Optional[Tuple[str, str, Tuple[str, ...]]]
    receiver_expr: Optional[ast.AST] = field(compare=False, hash=False, default=None)
    args: Tuple[Optional[Tuple[str, str, Tuple[str, ...]]], ...] = ()
    kwargs: Tuple[Tuple[str, Optional[Tuple[str, str, Tuple[str, ...]]]], ...] = ()


@dataclass
class FunctionSummary:
    """Direct effects + call sites of one function."""

    qualname: str
    module: str
    path: str
    line: int
    node: ast.FunctionDef = field(repr=False)
    params: Tuple[str, ...] = ()
    #: Raw annotation AST per parameter (receiver-type resolution input).
    param_annotations: Dict[str, ast.AST] = field(default_factory=dict, repr=False)
    #: Names bound locally (the call graph needs "is this name a local?"
    #: to put calls through values into the *dynamic* unresolved category).
    local_binds: Set[str] = field(default_factory=set, repr=False)
    effects: Set[Effect] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)
    #: Unresolved-call registry filled by the call graph:
    #: (callee name, line, category).
    unresolved: List[Tuple[str, int, str]] = field(default_factory=list)


def truncate(chain: Tuple[str, ...]) -> Tuple[str, ...]:
    """Cap a chain at :data:`MAX_CHAIN` (appending :data:`ELLIPSIS`).

    The ellipsis is *absorbing*: concatenating anything after a
    truncated chain yields the same truncated chain, so a function's
    effect set reaches a fixpoint instead of enumerating every suffix."""
    if ELLIPSIS in chain:
        chain = chain[: chain.index(ELLIPSIS) + 1]
    if len(chain) <= MAX_CHAIN:
        return chain
    return chain[:MAX_CHAIN] + (ELLIPSIS,)


def buffer_params(fn: ast.FunctionDef) -> Set[str]:
    """Per-shard buffer parameters (the RPR006 sanction, shared here)."""
    names = [a.arg for a in fn.args.args + fn.args.kwonlyargs]
    return {
        n
        for n in names
        if n in ("buf", "buffer") or n.endswith(("_buf", "_buffer"))
    }


def iter_body(fn: ast.FunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn``'s body without descending into nested function/class
    definitions or lambdas (their effects belong to *their* summaries,
    and their locals are not ours).  Comprehensions are walked — their
    targets are bound as locals below."""
    stack: List[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def local_names(fn: ast.FunctionDef) -> Set[str]:
    """Names bound inside the body (assignments, loop/with/walrus/
    comprehension targets, local defs and imports)."""
    out: Set[str] = set()

    def bind(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            out.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                bind(elt)
        elif isinstance(target, ast.Starred):
            bind(target.value)

    for node in iter_body(fn):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                bind(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            bind(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            bind(node.target)
        elif isinstance(node, ast.NamedExpr):
            bind(node.target)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    bind(item.optional_vars)
        elif isinstance(node, ast.comprehension):
            bind(node.target)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            out.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                out.add((alias.asname or alias.name).split(".")[0])
    return out


def global_decls(fn: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for node in iter_body(fn):
        if isinstance(node, ast.Global):
            out.update(node.names)
    return out


def attr_chain(node: ast.AST) -> Optional[Tuple[ast.AST, Tuple[str, ...]]]:
    """Decompose an attribute/subscript/call chain into (root expr,
    chain elements) — ``self._part(e).holders[k]`` →
    (``self``, ("_part()", "holders", "[]"))."""
    parts: List[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            parts.append(SUBSCRIPT)
            node = node.value
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                parts.append(func.attr + CALL_SUFFIX)
                node = func.value
            else:
                return None
        else:
            break
    parts.reverse()
    return node, tuple(parts)


class _Scope:
    """Name-classification for one function body."""

    def __init__(self, fn: ast.FunctionDef, module: str) -> None:
        arg_nodes = (
            fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        )
        self.params = tuple(a.arg for a in arg_nodes)
        extra = [fn.args.vararg, fn.args.kwarg]
        self.param_set = set(self.params) | {
            a.arg for a in extra if a is not None
        }
        self.buffers = buffer_params(fn)
        self.locals = local_names(fn)
        self.globals_declared = global_decls(fn)
        self.module = module
        #: Single-assignment locals aliasing a plain attribute chain.
        self.aliases: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {}

    def root_of(self, name: str) -> Optional[Tuple[str, str]]:
        """(root kind, root name) of a bare name, or None for locals and
        buffer parameters (whose effects are sanctioned away)."""
        if name in self.globals_declared:
            return ROOT_GLOBAL, f"{self.module}.{name}"
        if name in self.buffers:
            return None
        if name in ("self", "cls") and name in self.param_set:
            return ROOT_SELF, "self"
        if name in self.locals:
            alias = self.aliases.get(name)
            if alias is not None:
                return alias[0], alias[1]
            return None
        if name in self.param_set:
            return ROOT_PARAM, name
        # A module-level (or imported) name read/written without a local
        # binding: global root, module-qualified.
        return ROOT_GLOBAL, f"{self.module}.{name}"

    def describe(
        self, node: ast.AST
    ) -> Optional[Tuple[str, str, Tuple[str, ...]]]:
        """(root kind, root name, chain) of an expression, or ``None``
        when it is local/buffer-rooted or not a plain chain."""
        decomposed = attr_chain(node)
        if decomposed is None:
            return None
        base, chain = decomposed
        if not isinstance(base, ast.Name):
            return None
        name = base.id
        alias = None
        if name in self.locals and name not in self.param_set:
            alias = self.aliases.get(name)
        if alias is not None:
            return alias[0], alias[1], truncate(alias[2] + chain)
        root = self.root_of(name)
        if root is None:
            return None
        return root[0], root[1], truncate(chain)


def _collect_aliases(fn: ast.FunctionDef, scope: _Scope) -> None:
    """``d = self.cache.dirty`` binds ``d`` as an alias of that chain —
    but only for names assigned exactly once (a rebound name's root is
    ambiguous, so it degrades to a plain local)."""
    counts: Dict[str, int] = {}
    candidates: Dict[str, ast.AST] = {}
    for node in iter_body(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            t = node.targets[0]
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 1
                if isinstance(node.value, (ast.Attribute, ast.Name)):
                    candidates[t.id] = node.value
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign, ast.NamedExpr)):
            t = node.target
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 1
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name):
                counts[node.target.id] = counts.get(node.target.id, 0) + 2
    for name, value in sorted(candidates.items()):
        if counts.get(name, 0) != 1:
            continue
        described = scope.describe(value)
        if described is not None:
            scope.aliases[name] = described


def extract(
    fn: ast.FunctionDef, qualname: str, module: str, path: str
) -> FunctionSummary:
    """Direct effect summary + call sites of one function body."""
    scope = _Scope(fn, module)
    _collect_aliases(fn, scope)
    arg_nodes = fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
    summary = FunctionSummary(
        qualname=qualname,
        module=module,
        path=path,
        line=fn.lineno,
        node=fn,
        params=scope.params,
        param_annotations={
            a.arg: a.annotation for a in arg_nodes if a.annotation is not None
        },
        local_binds=set(scope.locals),
    )

    def add(kind: str, node: ast.AST, target: ast.AST) -> None:
        described = scope.describe(target)
        if described is None:
            return
        root, name, chain = described
        summary.effects.add(
            Effect(
                kind=kind,
                root=root,
                name=name,
                chain=chain,
                origin=qualname,
                line=getattr(node, "lineno", fn.lineno),
            )
        )

    for node in iter_body(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for t in targets:
                if isinstance(t, (ast.Attribute, ast.Subscript)):
                    add(WRITE, node, t)
                elif (
                    isinstance(t, ast.Name)
                    and t.id in scope.globals_declared
                ):
                    # `global x; x = 1` rebinding.
                    summary.effects.add(
                        Effect(
                            kind=WRITE,
                            root=ROOT_GLOBAL,
                            name=f"{module}.{t.id}",
                            chain=(),
                            origin=qualname,
                            line=node.lineno,
                        )
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in MUTATOR_METHODS:
                    # The conservative fallback: a mutator-named call
                    # mutates its receiver whether or not the callee ever
                    # resolves.
                    add(MUTATE, node, func.value)
                receiver = scope.describe(func.value)
                summary.calls.append(
                    CallSite(
                        callee=func.attr,
                        line=node.lineno,
                        is_method=True,
                        receiver=receiver,
                        receiver_expr=func.value,
                        args=tuple(
                            scope.describe(a)
                            if isinstance(a, (ast.Name, ast.Attribute))
                            else None
                            for a in node.args
                        ),
                        kwargs=tuple(
                            (
                                kw.arg,
                                scope.describe(kw.value)
                                if isinstance(
                                    kw.value, (ast.Name, ast.Attribute)
                                )
                                else None,
                            )
                            for kw in node.keywords
                            if kw.arg is not None
                        ),
                    )
                )
            elif isinstance(func, ast.Name):
                summary.calls.append(
                    CallSite(
                        callee=func.id,
                        line=node.lineno,
                        is_method=False,
                        receiver=None,
                        args=tuple(
                            scope.describe(a)
                            if isinstance(a, (ast.Name, ast.Attribute))
                            else None
                            for a in node.args
                        ),
                        kwargs=tuple(
                            (
                                kw.arg,
                                scope.describe(kw.value)
                                if isinstance(
                                    kw.value, (ast.Name, ast.Attribute)
                                )
                                else None,
                            )
                            for kw in node.keywords
                            if kw.arg is not None
                        ),
                    )
                )
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, ast.Load
        ):
            add(READ, node, node)
    return summary


def map_effect(
    effect: Effect,
    receiver: Optional[Tuple[str, str, Tuple[str, ...]]],
    argmap: Dict[str, Optional[Tuple[str, str, Tuple[str, ...]]]],
) -> Optional[Effect]:
    """Re-root a callee effect into the caller's scope at one call edge.

    * ``self``-rooted effects attach behind the receiver descriptor
      (``None`` receiver — a constructor call or an unresolvable chain —
      means the object is fresh or local: the effect is invisible to the
      caller and drops);
    * ``param``-rooted effects follow the argument bound to that
      parameter (unbound or complex arguments drop for the same reason);
    * ``global``-rooted effects pass through unchanged.
    """
    if effect.root == ROOT_GLOBAL:
        return effect
    if effect.root == ROOT_SELF:
        anchor = receiver
    else:
        anchor = argmap.get(effect.name)
    if anchor is None:
        return None
    root, name, chain = anchor
    return Effect(
        kind=effect.kind,
        root=root,
        name=name,
        chain=truncate(chain + effect.chain),
        origin=effect.origin,
        line=effect.line,
    )
