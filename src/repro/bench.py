"""Command-line experiment grids: ``python -m repro.bench``.

Runs a named grid preset (policies × workloads × seeds) through the
multiprocess grid runner and writes the unified BENCH artifact.  Examples::

    # the 1,200-txn open-system stress grid, 4 worker processes
    python -m repro.bench stress --workers 4

    # CI smoke: shrunken deadlock storms, serial-vs-parallel comparable
    python -m repro.bench deadlock --scale 0.1 --workers 2 --out BENCH_x.json

    # what exists
    python -m repro.bench --list

``--scale`` shrinks the transaction counts exactly like the benches'
``BENCH_SMOKE_SCALE``.  Omitting ``--workers`` runs the in-process
reference path; ``--workers N`` (N >= 1) fans out to N spawn processes,
and the same invocation with and without workers must produce identical
rows.  ``--shard-workers N`` selects the in-run parallel classify
executor (0 = the serial reference; rows stay byte-identical at any
count).  Explicit ``--workers``/``--seeds``/``--shards`` values below 1,
non-positive ``--scale`` values, and negative ``--shard-workers`` are
rejected at parse time.

Besides the grid presets there are *special* benches with their own
sweep logic; ``parallel_shards`` sweeps shards × shard_workers over an
upscaled mega-stress workload, asserts every configuration is
byte-identical to the serial shards=1 reference, and writes
``BENCH_parallel_shards.json`` with per-phase work counters (per-shard
classify counts, barrier waits, cross-shard spills) alongside
``wall_s``; ``service`` stress-tests the asyncio lock service with
concurrent in-process clients mixing authorized and unauthorized
operations and writes ``BENCH_service_stress.json`` with per-op
throughput and p50/p99 request latencies.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import sys
import time
from typing import Callable, Dict, List, Optional

from .policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from .sim import (
    CellResult,
    GridSpec,
    PolicySpec,
    Simulator,
    WorkloadSpec,
    cell_rows_with_work,
    format_table,
    grid_factory,
    grid_factory_names,
    run_grid,
    write_bench_artifact,
)


def _scaled(n: int, scale: float) -> int:
    return max(50, int(n * scale))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Parse-time twin of :func:`_positive_int` for ``--scale``: a zero or
    negative scale used to clamp silently to the 50-txn floor (``not
    value > 0`` also rejects NaN)."""
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _preset_stress(scale: float) -> GridSpec:
    """Open-system short-transaction stress: 2PL vs altruistic at 1,200
    transactions (the invalidation bench's altruistic-stress shape)."""
    n = _scaled(1200, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 2000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_deadlock(scale: float) -> GridSpec:
    """Deadlock storms (unordered access sets over a hot set): 2PL vs
    altruistic, the always-fresh waits-for graph's scale scenario."""
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("deadlock_storm", {
                "num_entities": 600, "num_txns": _scaled(1200, scale),
                "accesses_per_txn": 2, "arrival_rate": 0.4,
                "hot_set_size": 8, "hot_traffic": 0.5,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_traversal(scale: float) -> GridSpec:
    """DDAG vs 2PL on random-DAG traversals (the [CHMS94]-substitute
    comparison); already small, so ``--scale`` leaves it alone and every
    seed's schedule is serializability-checked."""
    return GridSpec(
        policies=(PolicySpec(DdagPolicy), PolicySpec(TwoPhasePolicy)),
        workloads=(
            WorkloadSpec("traversal", {
                "nodes": 10, "edge_prob": 0.25, "num_txns": 6,
                "walk_length": 5,
            }),
        ),
        seeds=tuple(range(8)),
        check_serializability=True,
    )


def _preset_mega_stress(scale: float) -> GridSpec:
    """The headroom probe for the layered kernel: 5,000 staggered short
    transactions over a wide entity space, admitted in arrival-tick
    batches and served through the sharded lock table (``lock_shards=8``;
    any shard count is byte-identical, so this doubles as a standing
    shard-invariance exercise at scale)."""
    n = _scaled(5000, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy),),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 8000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0,),
        max_ticks=20_000_000,
        check_serializability=False,
        lock_shards=8,
    )


PRESETS: Dict[str, Callable[[float], GridSpec]] = {
    "stress": _preset_stress,
    "deadlock": _preset_deadlock,
    "traversal": _preset_traversal,
    "mega_stress": _preset_mega_stress,
}

_COLUMNS = [
    "policy", "workload", "runs", "failures", "serializable",
    "ticks", "committed", "throughput", "mean_latency", "wait_fraction",
]

#: (shards, shard_workers) configurations the parallel_shards bench
#: sweeps; the first entry is the serial single-partition reference every
#: other configuration must reproduce byte-identically.
_PARALLEL_SWEEP = ((1, 0), (4, 0), (4, 2), (8, 0), (8, 2), (8, 4))

_PARALLEL_COLUMNS = [
    "shards", "shard_workers", "wall_s",
    "ticks", "committed", "throughput", "mean_latency", "wait_fraction",
]


def _run_parallel_shards(args: argparse.Namespace) -> int:
    """The parallel-executor bench: mega_stress scaled up, swept over
    shards × shard_workers, with every configuration asserted
    byte-identical to the serial shards=1 reference and the executors'
    per-phase work counters recorded per row.

    Honest numbers note: the parallel executor fans out *pure Python*
    derivations to threads, so under the GIL the parallel rows are
    expected to cost more wall clock than serial at the same shard count
    — the per-shard classify counts and spill fractions are the figures
    that matter (they prove the partitioning), and the wall clock is the
    standing record of what thread fan-out buys (or costs) until a
    process- or subinterpreter-backed executor lands."""
    scale = args.scale
    sweep = [
        (shards, workers)
        for shards, workers in _PARALLEL_SWEEP
        if args.shard_workers is None or workers in (0, args.shard_workers)
    ]
    items, initial, context_kwargs = grid_factory("stress")(
        0,
        num_entities=12_000,
        num_txns=_scaled(8000, scale),
        arrival_rate=0.085,
        hot_fraction=0.0,
    )
    rows: List[Dict[str, object]] = []
    reference = None
    start = time.perf_counter()
    for shards, workers in sweep:
        sim = Simulator(
            TwoPhasePolicy(),
            seed=0,
            max_ticks=20_000_000,
            context_kwargs=context_kwargs,
            engine="event",
            lock_shards=shards,
            shard_workers=workers,
        )
        t0 = time.perf_counter()
        result = sim.run(items, initial)
        wall = time.perf_counter() - t0
        summary = result.metrics.summary()
        outcome = (
            summary,
            result.metrics.work_summary(),
            result.committed,
            result.aborted,
            tuple(result.metrics.deadlock_victims),
        )
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise SystemExit(
                f"parallel_shards: shards={shards} shard_workers={workers} "
                f"diverged from the serial shards=1 reference"
            )
        row: Dict[str, object] = {
            "shards": shards,
            "shard_workers": workers,
            "wall_s": round(wall, 4),
        }
        row.update({
            k: round(summary[k], 4)
            for k in (
                "ticks", "committed", "throughput",
                "mean_latency", "wait_fraction",
            )
        })
        row["work"] = result.executor_stats
        rows.append(row)
        print(f"  shards={shards} shard_workers={workers}: {wall:.2f}s "
              f"(sharded={result.executor_stats['sharded_classifications']}, "
              f"spill={result.executor_stats['spill_classifications']}, "
              f"barriers={result.executor_stats['barrier_waits']})")
    total = time.perf_counter() - start
    print(format_table(rows, _PARALLEL_COLUMNS))
    print(f"\n{len(rows)} configurations in {total:.2f}s "
          f"(byte-identical to the serial shards=1 reference)")
    out = args.out or "BENCH_parallel_shards.json"
    write_bench_artifact(
        out, "parallel_shards", rows,
        scale=scale, workers=0, wall_s=total,
        extra={
            "engine": "event",
            "num_txns": _scaled(8000, scale),
            "num_entities": 12_000,
            "sweep": [list(pair) for pair in sweep],
        },
    )
    print(f"artifact: {out}")
    return 0


_SERVICE_COLUMNS = [
    "case", "requests", "throughput", "p50_ms", "p99_ms", "mean_ms",
]


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    return values[min(len(values) - 1, int(round(q * (len(values) - 1))))]


def _run_service_stress(args: argparse.Namespace) -> int:
    """The lock-service bench: concurrent in-process clients driving the
    audited asyncio front-end (:mod:`repro.service`) through contended
    begin/acquire/locks/release/commit rounds, with a sprinkle of
    unauthorized cross-actor requests that must be denied without state
    change.  Request latency is measured client-side around the full
    round trip (for a blocked acquire, up to and including the wake
    event), so the p50/p99 rows price the whole service stack — protocol,
    authorization, kernel, audit — not just the lock table."""
    from .service import LockService

    scale = args.scale
    clients = max(4, int(16 * scale))
    rounds = max(5, int(40 * scale))
    hot = [f"hot{i}" for i in range(6)]
    latencies: Dict[str, List[float]] = {}
    counts = {"denied": 0, "blocked": 0, "woken": 0}

    async def timed(client, op: str, **fields):
        t0 = time.perf_counter()
        reply = await client.request(op, **fields)
        if reply.get("outcome") == "blocked":
            counts["blocked"] += 1
            wake = await client.wait_wake(reply["id"])
            counts["woken"] += 1
            reply = {**reply, "outcome": wake["outcome"]}
        latencies.setdefault(op, []).append(time.perf_counter() - t0)
        if reply.get("outcome") == "denied":
            counts["denied"] += 1
        return reply

    async def run_client(svc, i: int) -> None:
        client = await svc.connect(f"actor{i}")
        for r in range(rounds):
            txn = f"c{i}-r{r}"
            await timed(client, "begin", txn=txn)
            await timed(client, "acquire", txn=txn, entity=f"p{i}", mode="X")
            entity = hot[(i + r) % len(hot)]
            mode = "X" if (i + r) % 5 == 0 else "S"
            got = await timed(client, "acquire", txn=txn, entity=entity,
                              mode=mode)
            await timed(client, "locks", txn=txn)
            if r % 7 == 3:
                # Unauthorized: another actor's transaction.  Denied (or,
                # if that client hasn't begun yet, a kernel ERROR) — never
                # a state change.
                other = f"c{(i + 1) % clients}-r0"
                await timed(client, "release", txn=other, entity="p0")
            if got.get("outcome") == "granted":
                await timed(client, "release", txn=txn, entity=entity)
            await timed(client, "commit", txn=txn)
        await client.close()

    async def drive():
        svc = LockService(lock_shards=4, max_inflight=8)
        t0 = time.perf_counter()
        await asyncio.gather(*(run_client(svc, i) for i in range(clients)))
        wall = time.perf_counter() - t0
        drained = await svc.drain()
        return svc, wall, drained

    svc, wall, drained = asyncio.run(drive())

    def render_row(case: str, values: List[float]) -> Dict[str, object]:
        ordered = sorted(values)
        return {
            "case": case,
            "requests": len(ordered),
            "throughput": round(len(ordered) / wall, 1),
            "p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
            "p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
            "mean_ms": round(1000 * sum(ordered) / len(ordered), 3),
        }

    every = [x for values in latencies.values() for x in values]
    rows = [render_row("all", every)] + [
        render_row(op, values) for op, values in sorted(latencies.items())
    ]
    print(format_table(rows, _SERVICE_COLUMNS))
    print(f"\n{clients} clients × {rounds} rounds in {wall:.2f}s "
          f"(denied={counts['denied']}, blocked={counts['blocked']}, "
          f"audit entries={len(svc.audit)})")
    out = args.out or "BENCH_service_stress.json"
    write_bench_artifact(
        out, "service_stress", rows,
        scale=scale, workers=0, wall_s=wall,
        extra={
            "clients": clients,
            "rounds": rounds,
            "max_inflight": 8,
            "lock_shards": 4,
            "denied": counts["denied"],
            "blocked": counts["blocked"],
            "woken": counts["woken"],
            "audit_entries": len(svc.audit),
            "drained": len(drained),
        },
    )
    print(f"artifact: {out}")
    return 0


#: Benches with their own sweep logic (not GridSpec presets); they share
#: the CLI surface (``--scale``, ``--shard-workers``, ``--out``).
SPECIAL_BENCHES: Dict[str, Callable[[argparse.Namespace], int]] = {
    "parallel_shards": _run_parallel_shards,
    "service": _run_service_stress,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a (policy × workload × seed) experiment grid.",
    )
    parser.add_argument(
        "preset", nargs="?", choices=sorted([*PRESETS, *SPECIAL_BENCHES]),
        help="grid preset or special bench to run",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=0,
        help="worker processes, >= 1 (omit for the in-process reference path)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=None,
        help="override the preset's seed count with range(N), N >= 1",
    )
    parser.add_argument(
        "--scale", type=_positive_float, default=1.0,
        help="shrink transaction counts (like BENCH_SMOKE_SCALE); must be > 0",
    )
    parser.add_argument(
        "--engine", choices=("event", "naive"), default=None,
        help="override the scheduler engine",
    )
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="override the per-run tick budget",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="override the lock-table shard count (rows are byte-identical "
             "at any count; 1 is the single-partition reference)",
    )
    parser.add_argument(
        "--shard-workers", type=_nonnegative_int, default=None,
        help="in-run classify-phase shard workers (0 = serial reference; "
             "rows are byte-identical at any count; for parallel_shards "
             "this filters the sweep to workers in {0, N})",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default: BENCH_grid_<preset>.json)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list presets and registered workload factories, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("presets:   ", ", ".join(sorted(PRESETS)))
        print("special:   ", ", ".join(sorted(SPECIAL_BENCHES)))
        print("factories: ", ", ".join(grid_factory_names()))
        return 0
    if args.preset is None:
        build_parser().error("a preset is required (or --list)")
    if args.preset in SPECIAL_BENCHES:
        return SPECIAL_BENCHES[args.preset](args)
    spec = PRESETS[args.preset](args.scale)
    overrides: Dict[str, object] = {}
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.max_ticks is not None:
        overrides["max_ticks"] = args.max_ticks
    if args.shards is not None:
        overrides["lock_shards"] = args.shards
    if args.shard_workers is not None:
        overrides["shard_workers"] = args.shard_workers
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    def announce(cell: CellResult) -> None:
        print(f"  cell done: {cell.policy} × {cell.workload} "
              f"({cell.runs} runs, {cell.failures} failures)")

    start = time.perf_counter()
    cells = run_grid(spec, workers=args.workers, progress=announce)
    wall = time.perf_counter() - start
    rows = [c.row() for c in cells]
    print(format_table(rows, _COLUMNS))
    print(f"\n{len(cells)} cells × {len(spec.seeds)} seeds in {wall:.2f}s "
          f"({args.workers} workers)")
    out = args.out or f"BENCH_grid_{args.preset}.json"
    write_bench_artifact(
        out, f"grid_{args.preset}",
        cell_rows_with_work(cells),
        scale=args.scale, workers=args.workers, wall_s=wall,
        extra={
            "engine": spec.engine,
            "seeds": list(spec.seeds),
            "lock_shards": spec.lock_shards,
            "shard_workers": spec.shard_workers,
        },
    )
    print(f"artifact: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
