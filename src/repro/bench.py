"""Command-line experiment grids: ``python -m repro.bench``.

Runs a named grid preset (policies × workloads × seeds) through the
multiprocess grid runner and writes the unified BENCH artifact.  Examples::

    # the 1,200-txn open-system stress grid, 4 worker processes
    python -m repro.bench stress --workers 4

    # CI smoke: shrunken deadlock storms, serial-vs-parallel comparable
    python -m repro.bench deadlock --scale 0.1 --workers 2 --out BENCH_x.json

    # what exists
    python -m repro.bench --list

``--scale`` shrinks the transaction counts exactly like the benches'
``BENCH_SMOKE_SCALE``.  Omitting ``--workers`` runs the in-process
reference path; ``--workers N`` (N >= 1) fans out to N spawn processes,
and the same invocation with and without workers must produce identical
rows.  ``--shard-workers N`` selects the in-run parallel classify
executor (0 = the serial reference; rows stay byte-identical at any
count).  Explicit ``--workers``/``--seeds``/``--shards`` values below 1,
non-positive ``--scale`` values, and negative ``--shard-workers`` are
rejected at parse time.

Besides the grid presets there are *special* benches with their own
sweep logic; ``parallel_shards`` sweeps shards × shard_workers ×
executor (serial / thread / process) over an upscaled mega-stress
workload, asserts every configuration is byte-identical to the serial
shards=1 reference, and writes ``BENCH_parallel_shards.json`` with
per-phase work counters (per-shard classify counts, barrier waits,
per-cause spills, replica delta bytes and IPC round trips) alongside
``wall_s``; ``service`` stress-tests the asyncio lock service with
concurrent in-process clients mixing authorized and unauthorized
operations and writes ``BENCH_service_stress.json`` with per-op
throughput and p50/p99 request latencies.

``--compare OLD.json NEW.json`` diffs two artifacts of the same bench
row by row (every numeric column, nested work counters included) and —
with ``--max-wall-regression FRAC`` — exits non-zero when any wall
clock grew past the allowance; CI uses it as the regression gate
instead of ad-hoc inline wall checks.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import sys
import time
from typing import Callable, Dict, List, Optional

from .policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from .sim import (
    CellResult,
    GridSpec,
    PolicySpec,
    Simulator,
    WorkloadSpec,
    cell_rows_with_work,
    format_table,
    grid_factory,
    grid_factory_names,
    run_grid,
    write_bench_artifact,
)


def _scaled(n: int, scale: float) -> int:
    return max(50, int(n * scale))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    """Parse-time twin of :func:`_positive_int` for ``--scale``: a zero or
    negative scale used to clamp silently to the 50-txn floor (``not
    value > 0`` also rejects NaN)."""
    value = float(text)
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _preset_stress(scale: float) -> GridSpec:
    """Open-system short-transaction stress: 2PL vs altruistic at 1,200
    transactions (the invalidation bench's altruistic-stress shape)."""
    n = _scaled(1200, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 2000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_deadlock(scale: float) -> GridSpec:
    """Deadlock storms (unordered access sets over a hot set): 2PL vs
    altruistic, the always-fresh waits-for graph's scale scenario."""
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("deadlock_storm", {
                "num_entities": 600, "num_txns": _scaled(1200, scale),
                "accesses_per_txn": 2, "arrival_rate": 0.4,
                "hot_set_size": 8, "hot_traffic": 0.5,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_traversal(scale: float) -> GridSpec:
    """DDAG vs 2PL on random-DAG traversals (the [CHMS94]-substitute
    comparison); already small, so ``--scale`` leaves it alone and every
    seed's schedule is serializability-checked."""
    return GridSpec(
        policies=(PolicySpec(DdagPolicy), PolicySpec(TwoPhasePolicy)),
        workloads=(
            WorkloadSpec("traversal", {
                "nodes": 10, "edge_prob": 0.25, "num_txns": 6,
                "walk_length": 5,
            }),
        ),
        seeds=tuple(range(8)),
        check_serializability=True,
    )


def _preset_mega_stress(scale: float) -> GridSpec:
    """The headroom probe for the layered kernel: 5,000 staggered short
    transactions over a wide entity space, admitted in arrival-tick
    batches and served through the sharded lock table (``lock_shards=8``;
    any shard count is byte-identical, so this doubles as a standing
    shard-invariance exercise at scale)."""
    n = _scaled(5000, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy),),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 8000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0,),
        max_ticks=20_000_000,
        check_serializability=False,
        lock_shards=8,
    )


def _preset_mega_stress_50k(scale: float) -> GridSpec:
    """The ROADMAP's 50k-transaction target: 50,000 staggered short
    transactions over 64,000 entities through the 8-shard table.  The
    scale knob shrinks it for CI; at full scale this is the configuration
    the executor axis (``--executor process --shard-workers N``) is
    priced against."""
    n = _scaled(50_000, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy),),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 64_000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0,),
        max_ticks=100_000_000,
        check_serializability=False,
        lock_shards=8,
    )


PRESETS: Dict[str, Callable[[float], GridSpec]] = {
    "stress": _preset_stress,
    "deadlock": _preset_deadlock,
    "traversal": _preset_traversal,
    "mega_stress": _preset_mega_stress,
    "mega_stress_50k": _preset_mega_stress_50k,
}

_COLUMNS = [
    "policy", "workload", "runs", "failures", "serializable",
    "ticks", "committed", "throughput", "mean_latency", "wait_fraction",
]

#: (shards, shard_workers, executor) configurations the parallel_shards
#: bench sweeps; the first entry is the serial single-partition reference
#: every other configuration must reproduce byte-identically.
_PARALLEL_SWEEP = (
    (1, 0, "serial"),
    (4, 0, "serial"),
    (4, 2, "thread"),
    (4, 2, "process"),
    (8, 0, "serial"),
    (8, 2, "thread"),
    (8, 2, "process"),
    (8, 4, "thread"),
    (8, 4, "process"),
)

_PARALLEL_COLUMNS = [
    "shards", "shard_workers", "executor", "wall_s",
    "ticks", "committed", "throughput", "mean_latency", "wait_fraction",
]


def _run_parallel_shards(args: argparse.Namespace) -> int:
    """The parallel-executor bench: mega_stress scaled up, swept over
    shards × shard_workers × executor, with every configuration asserted
    byte-identical to the serial shards=1 reference and the executors'
    per-phase work counters recorded per row.

    Honest numbers note: the thread executor fans out *pure Python*
    derivations under the GIL, so its rows are expected to cost more wall
    clock than serial at the same shard count; the process executor pays
    the replica-delta protocol instead (``delta_bytes``,
    ``ipc_round_trips`` in each row's work counters) and ships only
    batches big enough to amortize a pipe round trip.  The per-cause
    spill counters and per-shard classify counts are the figures that
    prove the partitioning; the wall clock is the standing record of what
    each executor buys (or costs) at this scale."""
    scale = args.scale
    sweep = [
        (shards, workers, executor)
        for shards, workers, executor in _PARALLEL_SWEEP
        if (args.shard_workers is None
            or workers in (0, args.shard_workers))
        and (args.executor is None or executor in ("serial", args.executor))
    ]
    items, initial, context_kwargs = grid_factory("stress")(
        0,
        num_entities=12_000,
        num_txns=_scaled(8000, scale),
        arrival_rate=0.085,
        hot_fraction=0.0,
    )
    rows: List[Dict[str, object]] = []
    reference = None
    start = time.perf_counter()
    for shards, workers, executor in sweep:
        sim = Simulator(
            TwoPhasePolicy(),
            seed=0,
            max_ticks=20_000_000,
            context_kwargs=context_kwargs,
            engine="event",
            lock_shards=shards,
            shard_workers=workers,
            executor=executor,
        )
        t0 = time.perf_counter()
        result = sim.run(items, initial)
        wall = time.perf_counter() - t0
        summary = result.metrics.summary()
        outcome = (
            summary,
            result.metrics.work_summary(),
            result.committed,
            result.aborted,
            tuple(result.metrics.deadlock_victims),
        )
        if reference is None:
            reference = outcome
        elif outcome != reference:
            raise SystemExit(
                f"parallel_shards: shards={shards} shard_workers={workers} "
                f"executor={executor} diverged from the serial shards=1 "
                f"reference"
            )
        row: Dict[str, object] = {
            "shards": shards,
            "shard_workers": workers,
            "executor": executor,
            "wall_s": round(wall, 4),
        }
        row.update({
            k: round(summary[k], 4)
            for k in (
                "ticks", "committed", "throughput",
                "mean_latency", "wait_fraction",
            )
        })
        stats = result.executor_stats
        row["work"] = stats
        rows.append(row)
        causes = stats["spill_causes"]
        cause_text = ", ".join(
            f"{cause}={count}" for cause, count in causes.items()
        ) or "none"
        print(f"  shards={shards} shard_workers={workers} "
              f"executor={executor}: {wall:.2f}s "
              f"(sharded={stats['sharded_classifications']}, "
              f"spill={stats['spill_classifications']} [{cause_text}], "
              f"spill_fraction={stats['spill_fraction']:.4f}, "
              f"barriers={stats['barrier_waits']}, "
              f"ipc={stats['ipc_round_trips']}, "
              f"delta_bytes={stats['delta_bytes']})")
    total = time.perf_counter() - start
    print(format_table(rows, _PARALLEL_COLUMNS))
    print(f"\n{len(rows)} configurations in {total:.2f}s "
          f"(byte-identical to the serial shards=1 reference)")
    out = args.out or "BENCH_parallel_shards.json"
    write_bench_artifact(
        out, "parallel_shards", rows,
        scale=scale, workers=0, wall_s=total,
        extra={
            "engine": "event",
            "num_txns": _scaled(8000, scale),
            "num_entities": 12_000,
            "sweep": [list(entry) for entry in sweep],
        },
    )
    print(f"artifact: {out}")
    return 0


_SERVICE_COLUMNS = [
    "case", "requests", "throughput", "p50_ms", "p99_ms", "mean_ms",
]


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    return values[min(len(values) - 1, int(round(q * (len(values) - 1))))]


def _run_service_stress(args: argparse.Namespace) -> int:
    """The lock-service bench: concurrent in-process clients driving the
    audited asyncio front-end (:mod:`repro.service`) through contended
    begin/acquire/locks/release/commit rounds, with a sprinkle of
    unauthorized cross-actor requests that must be denied without state
    change.  Request latency is measured client-side around the full
    round trip (for a blocked acquire, up to and including the wake
    event), so the p50/p99 rows price the whole service stack — protocol,
    authorization, kernel, audit — not just the lock table."""
    from .service import LockService

    scale = args.scale
    clients = max(4, int(16 * scale))
    rounds = max(5, int(40 * scale))
    hot = [f"hot{i}" for i in range(6)]
    latencies: Dict[str, List[float]] = {}
    counts = {"denied": 0, "blocked": 0, "woken": 0}

    async def timed(client, op: str, **fields):
        t0 = time.perf_counter()
        reply = await client.request(op, **fields)
        if reply.get("outcome") == "blocked":
            counts["blocked"] += 1
            wake = await client.wait_wake(reply["id"])
            counts["woken"] += 1
            reply = {**reply, "outcome": wake["outcome"]}
        latencies.setdefault(op, []).append(time.perf_counter() - t0)
        if reply.get("outcome") == "denied":
            counts["denied"] += 1
        return reply

    async def run_client(svc, i: int) -> None:
        client = await svc.connect(f"actor{i}")
        for r in range(rounds):
            txn = f"c{i}-r{r}"
            await timed(client, "begin", txn=txn)
            await timed(client, "acquire", txn=txn, entity=f"p{i}", mode="X")
            entity = hot[(i + r) % len(hot)]
            mode = "X" if (i + r) % 5 == 0 else "S"
            got = await timed(client, "acquire", txn=txn, entity=entity,
                              mode=mode)
            await timed(client, "locks", txn=txn)
            if r % 7 == 3:
                # Unauthorized: another actor's transaction.  Denied (or,
                # if that client hasn't begun yet, a kernel ERROR) — never
                # a state change.
                other = f"c{(i + 1) % clients}-r0"
                await timed(client, "release", txn=other, entity="p0")
            if got.get("outcome") == "granted":
                await timed(client, "release", txn=txn, entity=entity)
            await timed(client, "commit", txn=txn)
        await client.close()

    async def drive():
        svc = LockService(lock_shards=4, max_inflight=8)
        t0 = time.perf_counter()
        await asyncio.gather(*(run_client(svc, i) for i in range(clients)))
        wall = time.perf_counter() - t0
        drained = await svc.drain()
        return svc, wall, drained

    svc, wall, drained = asyncio.run(drive())

    def render_row(case: str, values: List[float]) -> Dict[str, object]:
        ordered = sorted(values)
        return {
            "case": case,
            "requests": len(ordered),
            "throughput": round(len(ordered) / wall, 1),
            "p50_ms": round(1000 * _percentile(ordered, 0.50), 3),
            "p99_ms": round(1000 * _percentile(ordered, 0.99), 3),
            "mean_ms": round(1000 * sum(ordered) / len(ordered), 3),
        }

    every = [x for values in latencies.values() for x in values]
    rows = [render_row("all", every)] + [
        render_row(op, values) for op, values in sorted(latencies.items())
    ]
    print(format_table(rows, _SERVICE_COLUMNS))
    print(f"\n{clients} clients × {rounds} rounds in {wall:.2f}s "
          f"(denied={counts['denied']}, blocked={counts['blocked']}, "
          f"audit entries={len(svc.audit)})")
    out = args.out or "BENCH_service_stress.json"
    write_bench_artifact(
        out, "service_stress", rows,
        scale=scale, workers=0, wall_s=wall,
        extra={
            "clients": clients,
            "rounds": rounds,
            "max_inflight": 8,
            "lock_shards": 4,
            "denied": counts["denied"],
            "blocked": counts["blocked"],
            "woken": counts["woken"],
            "audit_entries": len(svc.audit),
            "drained": len(drained),
        },
    )
    print(f"artifact: {out}")
    return 0


#: Benches with their own sweep logic (not GridSpec presets); they share
#: the CLI surface (``--scale``, ``--shard-workers``, ``--out``).
SPECIAL_BENCHES: Dict[str, Callable[[argparse.Namespace], int]] = {
    "parallel_shards": _run_parallel_shards,
    "service": _run_service_stress,
}


# ----------------------------------------------------------------------
# Artifact diff (--compare): the CI regression gate
# ----------------------------------------------------------------------

#: Row keys that *identify* a row rather than measure it: two compared
#: artifacts must agree on these per row (same sweep, same cells).
_IDENTITY_KEYS = (
    "policy", "workload", "case", "shards", "shard_workers", "executor",
)

_COMPARE_COLUMNS = ["row", "metric", "old", "new", "delta", "delta_pct"]


def _row_label(row: Dict[str, object]) -> str:
    parts = [
        f"{k}={row[k]}" for k in _IDENTITY_KEYS if k in row
    ]
    return " ".join(parts) if parts else "<row>"


def _flatten_numeric(row: Dict[str, object], prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a row (descending into the nested ``work``
    counter dict), keyed ``name`` / ``work.name``; bools excluded."""
    out: Dict[str, float] = {}
    for key, value in row.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[prefix + key] = float(value)
        elif isinstance(value, dict):
            out.update(_flatten_numeric(value, prefix=f"{prefix}{key}."))
    return out


def _run_compare(args: argparse.Namespace) -> int:
    """``--compare OLD.json NEW.json``: the artifact-diff mode CI uses as
    its regression gate instead of ad-hoc wall-clock guards.  Asserts the
    two artifacts describe the same bench and row identities, prints
    per-row deltas (absolute and %) for every shared numeric column —
    including the nested work counters — and fails (exit 1) when any
    row's ``wall_s`` regressed by more than ``--max-wall-regression``
    (a fraction: 0.5 allows +50%).  Without the threshold the diff is
    report-only and always exits 0."""
    old_path, new_path = args.compare
    with open(old_path) as fh:
        old = json.load(fh)
    with open(new_path) as fh:
        new = json.load(fh)
    for field in ("bench", "schema"):
        if old.get(field) != new.get(field):
            print(f"compare: {field!r} mismatch: "
                  f"{old.get(field)!r} vs {new.get(field)!r}")
            return 2
    old_rows, new_rows = old.get("rows", []), new.get("rows", [])
    if len(old_rows) != len(new_rows):
        print(f"compare: row count mismatch: {len(old_rows)} vs "
              f"{len(new_rows)}")
        return 2
    failures: List[str] = []
    table: List[Dict[str, object]] = []
    for i, (o, n) in enumerate(zip(old_rows, new_rows)):
        for key in _IDENTITY_KEYS:
            if o.get(key) != n.get(key):
                print(f"compare: row {i} identity {key!r} mismatch: "
                      f"{o.get(key)!r} vs {n.get(key)!r}")
                return 2
        o_num, n_num = _flatten_numeric(o), _flatten_numeric(n)
        shared = [k for k in o_num if k in n_num]
        missing = sorted(set(o_num).symmetric_difference(n_num))
        if missing:
            print(f"compare: row {i} ({_row_label(o)}): keys only on one "
                  f"side (skipped): {', '.join(missing)}")
        label = _row_label(o)
        for key in shared:
            before, after = o_num[key], n_num[key]
            delta = after - before
            pct = (100.0 * delta / before) if before else float("inf")
            if delta == 0:
                continue
            table.append({
                "row": label,
                "metric": key,
                "old": round(before, 4),
                "new": round(after, 4),
                "delta": round(delta, 4),
                "delta_pct": (f"{pct:+.1f}%" if before else "new"),
            })
        if (args.max_wall_regression is not None
                and "wall_s" in o_num and "wall_s" in n_num
                and n_num["wall_s"] > o_num["wall_s"]
                * (1.0 + args.max_wall_regression)):
            failures.append(
                f"row {i} ({label}): wall_s {o_num['wall_s']:.4f} -> "
                f"{n_num['wall_s']:.4f} exceeds allowed "
                f"+{100 * args.max_wall_regression:.0f}%"
            )
    # The harness wall clock lives at the top level (grid presets do not
    # record per-row walls) — gate it under the same threshold.
    old_wall, new_wall = old.get("wall_s"), new.get("wall_s")
    if isinstance(old_wall, (int, float)) and isinstance(new_wall, (int, float)):
        delta = new_wall - old_wall
        if delta:
            table.append({
                "row": "<artifact>", "metric": "wall_s",
                "old": round(float(old_wall), 4),
                "new": round(float(new_wall), 4),
                "delta": round(delta, 4),
                "delta_pct": (f"{100.0 * delta / old_wall:+.1f}%"
                              if old_wall else "new"),
            })
        if (args.max_wall_regression is not None
                and new_wall > old_wall * (1.0 + args.max_wall_regression)):
            failures.append(
                f"artifact wall_s {old_wall:.4f} -> {new_wall:.4f} exceeds "
                f"allowed +{100 * args.max_wall_regression:.0f}%"
            )
    if table:
        print(format_table(table, _COMPARE_COLUMNS))
    else:
        print("compare: no numeric differences")
    print(f"\ncompared {len(old_rows)} rows "
          f"({old.get('bench')!r}, {old_path} -> {new_path})")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a (policy × workload × seed) experiment grid.",
    )
    parser.add_argument(
        "preset", nargs="?", choices=sorted([*PRESETS, *SPECIAL_BENCHES]),
        help="grid preset or special bench to run",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=0,
        help="worker processes, >= 1 (omit for the in-process reference path)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=None,
        help="override the preset's seed count with range(N), N >= 1",
    )
    parser.add_argument(
        "--scale", type=_positive_float, default=1.0,
        help="shrink transaction counts (like BENCH_SMOKE_SCALE); must be > 0",
    )
    parser.add_argument(
        "--engine", choices=("event", "naive"), default=None,
        help="override the scheduler engine",
    )
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="override the per-run tick budget",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="override the lock-table shard count (rows are byte-identical "
             "at any count; 1 is the single-partition reference)",
    )
    parser.add_argument(
        "--shard-workers", type=_nonnegative_int, default=None,
        help="in-run classify-phase shard workers (0 = serial reference; "
             "rows are byte-identical at any count; for parallel_shards "
             "this filters the sweep to workers in {0, N})",
    )
    parser.add_argument(
        "--executor", choices=("serial", "thread", "process"), default=None,
        help="in-run classify executor kind when --shard-workers >= 1 "
             "(rows are byte-identical for any kind; for parallel_shards "
             "this filters the sweep to {serial, KIND} rows)",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default: BENCH_grid_<preset>.json)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list presets and registered workload factories, then exit",
    )
    parser.add_argument(
        "--compare", nargs=2, metavar=("OLD.json", "NEW.json"), default=None,
        help="artifact-diff mode: print per-row metric deltas between two "
             "BENCH artifacts of the same bench; with "
             "--max-wall-regression, exit 1 on a wall_s regression",
    )
    parser.add_argument(
        "--max-wall-regression", type=_positive_float, default=None,
        help="with --compare: allowed fractional wall_s growth "
             "(0.5 = +50%%) before the diff exits non-zero",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("presets:   ", ", ".join(sorted(PRESETS)))
        print("special:   ", ", ".join(sorted(SPECIAL_BENCHES)))
        print("factories: ", ", ".join(grid_factory_names()))
        return 0
    if args.compare is not None:
        if args.preset is not None:
            build_parser().error("--compare takes no preset")
        return _run_compare(args)
    if args.preset is None:
        build_parser().error("a preset is required (or --list, --compare)")
    if args.preset in SPECIAL_BENCHES:
        return SPECIAL_BENCHES[args.preset](args)
    spec = PRESETS[args.preset](args.scale)
    overrides: Dict[str, object] = {}
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.max_ticks is not None:
        overrides["max_ticks"] = args.max_ticks
    if args.shards is not None:
        overrides["lock_shards"] = args.shards
    if args.shard_workers is not None:
        overrides["shard_workers"] = args.shard_workers
    if args.executor is not None:
        overrides["executor"] = args.executor
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    def announce(cell: CellResult) -> None:
        print(f"  cell done: {cell.policy} × {cell.workload} "
              f"({cell.runs} runs, {cell.failures} failures)")

    start = time.perf_counter()
    cells = run_grid(spec, workers=args.workers, progress=announce)
    wall = time.perf_counter() - start
    rows = [c.row() for c in cells]
    print(format_table(rows, _COLUMNS))
    print(f"\n{len(cells)} cells × {len(spec.seeds)} seeds in {wall:.2f}s "
          f"({args.workers} workers)")
    out = args.out or f"BENCH_grid_{args.preset}.json"
    write_bench_artifact(
        out, f"grid_{args.preset}",
        cell_rows_with_work(cells),
        scale=args.scale, workers=args.workers, wall_s=wall,
        extra={
            "engine": spec.engine,
            "seeds": list(spec.seeds),
            "lock_shards": spec.lock_shards,
            "shard_workers": spec.shard_workers,
            "executor": spec.executor,
        },
    )
    print(f"artifact: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
