"""Command-line experiment grids: ``python -m repro.bench``.

Runs a named grid preset (policies × workloads × seeds) through the
multiprocess grid runner and writes the unified BENCH artifact.  Examples::

    # the 1,200-txn open-system stress grid, 4 worker processes
    python -m repro.bench stress --workers 4

    # CI smoke: shrunken deadlock storms, serial-vs-parallel comparable
    python -m repro.bench deadlock --scale 0.1 --workers 2 --out BENCH_x.json

    # what exists
    python -m repro.bench --list

``--scale`` shrinks the transaction counts exactly like the benches'
``BENCH_SMOKE_SCALE``.  Omitting ``--workers`` runs the in-process
reference path; ``--workers N`` (N >= 1) fans out to N spawn processes,
and the same invocation with and without workers must produce identical
rows.  Explicit ``--workers``/``--seeds``/``--shards`` values below 1 are
rejected at parse time.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import Callable, Dict, List, Optional

from .policies import AltruisticPolicy, DdagPolicy, TwoPhasePolicy
from .sim import (
    CellResult,
    GridSpec,
    PolicySpec,
    WorkloadSpec,
    cell_rows_with_work,
    format_table,
    grid_factory_names,
    run_grid,
    write_bench_artifact,
)


def _scaled(n: int, scale: float) -> int:
    return max(50, int(n * scale))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _preset_stress(scale: float) -> GridSpec:
    """Open-system short-transaction stress: 2PL vs altruistic at 1,200
    transactions (the invalidation bench's altruistic-stress shape)."""
    n = _scaled(1200, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 2000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_deadlock(scale: float) -> GridSpec:
    """Deadlock storms (unordered access sets over a hot set): 2PL vs
    altruistic, the always-fresh waits-for graph's scale scenario."""
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy), PolicySpec(AltruisticPolicy)),
        workloads=(
            WorkloadSpec("deadlock_storm", {
                "num_entities": 600, "num_txns": _scaled(1200, scale),
                "accesses_per_txn": 2, "arrival_rate": 0.4,
                "hot_set_size": 8, "hot_traffic": 0.5,
            }),
        ),
        seeds=(0, 1, 2),
        max_ticks=2_000_000,
        check_serializability=False,
    )


def _preset_traversal(scale: float) -> GridSpec:
    """DDAG vs 2PL on random-DAG traversals (the [CHMS94]-substitute
    comparison); already small, so ``--scale`` leaves it alone and every
    seed's schedule is serializability-checked."""
    return GridSpec(
        policies=(PolicySpec(DdagPolicy), PolicySpec(TwoPhasePolicy)),
        workloads=(
            WorkloadSpec("traversal", {
                "nodes": 10, "edge_prob": 0.25, "num_txns": 6,
                "walk_length": 5,
            }),
        ),
        seeds=tuple(range(8)),
        check_serializability=True,
    )


def _preset_mega_stress(scale: float) -> GridSpec:
    """The headroom probe for the layered kernel: 5,000 staggered short
    transactions over a wide entity space, admitted in arrival-tick
    batches and served through the sharded lock table (``lock_shards=8``;
    any shard count is byte-identical, so this doubles as a standing
    shard-invariance exercise at scale)."""
    n = _scaled(5000, scale)
    return GridSpec(
        policies=(PolicySpec(TwoPhasePolicy),),
        workloads=(
            WorkloadSpec("stress", {
                "num_entities": 8000, "num_txns": n,
                "arrival_rate": 0.085, "hot_fraction": 0.0,
            }),
        ),
        seeds=(0,),
        max_ticks=20_000_000,
        check_serializability=False,
        lock_shards=8,
    )


PRESETS: Dict[str, Callable[[float], GridSpec]] = {
    "stress": _preset_stress,
    "deadlock": _preset_deadlock,
    "traversal": _preset_traversal,
    "mega_stress": _preset_mega_stress,
}

_COLUMNS = [
    "policy", "workload", "runs", "failures", "serializable",
    "ticks", "committed", "throughput", "mean_latency", "wait_fraction",
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run a (policy × workload × seed) experiment grid.",
    )
    parser.add_argument(
        "preset", nargs="?", choices=sorted(PRESETS),
        help="grid preset to run",
    )
    parser.add_argument(
        "--workers", type=_positive_int, default=0,
        help="worker processes, >= 1 (omit for the in-process reference path)",
    )
    parser.add_argument(
        "--seeds", type=_positive_int, default=None,
        help="override the preset's seed count with range(N), N >= 1",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="shrink transaction counts (like BENCH_SMOKE_SCALE)",
    )
    parser.add_argument(
        "--engine", choices=("event", "naive"), default=None,
        help="override the scheduler engine",
    )
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="override the per-run tick budget",
    )
    parser.add_argument(
        "--shards", type=_positive_int, default=None,
        help="override the lock-table shard count (rows are byte-identical "
             "at any count; 1 is the single-partition reference)",
    )
    parser.add_argument(
        "--out", default=None,
        help="artifact path (default: BENCH_grid_<preset>.json)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list presets and registered workload factories, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("presets:   ", ", ".join(sorted(PRESETS)))
        print("factories: ", ", ".join(grid_factory_names()))
        return 0
    if args.preset is None:
        build_parser().error("a preset is required (or --list)")
    spec = PRESETS[args.preset](args.scale)
    overrides: Dict[str, object] = {}
    if args.seeds is not None:
        overrides["seeds"] = tuple(range(args.seeds))
    if args.engine is not None:
        overrides["engine"] = args.engine
    if args.max_ticks is not None:
        overrides["max_ticks"] = args.max_ticks
    if args.shards is not None:
        overrides["lock_shards"] = args.shards
    if overrides:
        spec = dataclasses.replace(spec, **overrides)

    def announce(cell: CellResult) -> None:
        print(f"  cell done: {cell.policy} × {cell.workload} "
              f"({cell.runs} runs, {cell.failures} failures)")

    start = time.perf_counter()
    cells = run_grid(spec, workers=args.workers, progress=announce)
    wall = time.perf_counter() - start
    rows = [c.row() for c in cells]
    print(format_table(rows, _COLUMNS))
    print(f"\n{len(cells)} cells × {len(spec.seeds)} seeds in {wall:.2f}s "
          f"({args.workers} workers)")
    out = args.out or f"BENCH_grid_{args.preset}.json"
    write_bench_artifact(
        out, f"grid_{args.preset}",
        cell_rows_with_work(cells),
        scale=args.scale, workers=args.workers, wall_s=wall,
        extra={
            "engine": spec.engine,
            "seeds": list(spec.seeds),
            "lock_shards": spec.lock_shards,
        },
    )
    print(f"artifact: {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
