"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the layers of
the system: the schedule/transaction model, the locking policies, the
verifier, and the concurrency simulator.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """Base class for errors in the core schedule/transaction model."""


class MalformedTransactionError(ModelError):
    """A transaction violates a structural rule of the model.

    Examples: a locked transaction that reads an entity without holding a
    lock, unlocks an entity it never locked, or locks the same entity twice
    when the lock-once assumption is in force.
    """


class MalformedScheduleError(ModelError):
    """A schedule is not a valid interleaving of its transactions.

    Raised when events of one transaction appear out of order, when an event
    references a step the transaction does not contain, or when two events
    claim the same (transaction, step-index) slot.
    """


class ImproperScheduleError(ModelError):
    """A schedule step is undefined in the structural state it executes in.

    Corresponds to the paper's notion of a schedule that is *not proper*:
    a READ/WRITE/DELETE on an absent entity or an INSERT of a present one.
    """


class IllegalScheduleError(ModelError):
    """Two transactions hold conflicting locks at the same time.

    Corresponds to the paper's notion of a schedule that is *not legal*.
    """


class PolicyError(ReproError):
    """Base class for locking-policy errors."""


class PolicyViolation(PolicyError):
    """An operation would violate a rule of the active locking policy.

    The ``rule`` attribute names the violated rule using the paper's
    identifiers (e.g. ``"L5"`` for the DDAG predecessor rule, ``"AL2"`` for
    the altruistic wake rule, ``"DT3"`` for dynamic-tree deletion).
    """

    def __init__(self, rule: str, message: str):
        super().__init__(f"[{rule}] {message}")
        self.rule = rule
        self.message = message


class VerificationError(ReproError):
    """The verifier was asked an ill-posed question or hit its search bound."""


class SearchBudgetExceeded(VerificationError):
    """An exhaustive search exceeded its configured node budget."""

    def __init__(self, budget: int):
        super().__init__(f"search exceeded its node budget of {budget}")
        self.budget = budget


class SimulationError(ReproError):
    """Base class for errors raised by the concurrency simulator."""


class DeadlockError(SimulationError):
    """The simulator detected a deadlock and no resolution was configured."""

    def __init__(self, cycle):
        names = " -> ".join(str(t) for t in cycle)
        super().__init__(f"deadlock cycle: {names}")
        self.cycle = tuple(cycle)
