"""``python -m repro.lint`` — the project's static-analysis gate.

Thin runnable wrapper over :mod:`repro.analysis` (file rules
RPR001-RPR006: determinism hazards, invalidation-protocol conformance,
layering, spawn safety, shard safety, phase purity; whole-program rules
RPR007-RPR009: transitive phase purity, cross-shard write-write races,
merge-barrier discipline — run against the fixpoint effect summaries of
an import-resolved call graph).  See docs/ARCHITECTURE.md § Analysis
layer.
"""

from __future__ import annotations

import sys

from .analysis.cli import build_parser, main

__all__ = ["build_parser", "main"]

if __name__ == "__main__":
    sys.exit(main())
