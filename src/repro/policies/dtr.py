"""The Dynamic Tree (DTR) locking policy — Section 6 of the paper [CM86].

Where the DDAG policy assumes a given database graph, the DTR policy
*creates its own* control structure: a **database forest** maintained by the
concurrency-control algorithm, not by the transactions.  Rules:

* **DT0** — initially the database forest is empty.
* **DT1** — two trees are joined by an edge from the root of one to the root
  of the other; a set of new entities is first connected into a tree, then
  joined.
* **DT2** — when a transaction ``T`` starts, all trees containing entities of
  ``A(T)`` (the entities ``T`` explicitly accesses) are joined into a single
  tree ``g``, the missing entities are added to ``g``, and ``T`` is
  **tree-locked** with respect to ``g``.
* **DT3** — a node may be deleted from the forest when no active transaction
  holds a lock on it and every active transaction remains tree-locked with
  respect to the forest minus the node.

A transaction is *tree-locked* w.r.t. ``g`` when every ``(LX A)`` step except
the first is preceded by ``(LX B)`` and followed by ``(U B)`` where ``B`` is
the parent of ``A`` in ``g``, and no entity is locked twice.

As the paper notes, the locked transaction is **precomputed** when the
transaction begins (unlike DDAG's fully dynamic locking); sessions are
therefore :class:`~repro.policies.base.ScriptedSession` instances playing a
crab-locking walk of the induced subtree.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import LockMode, Operation
from ..core.steps import Entity, Step
from ..core.transactions import Transaction
from ..exceptions import PolicyViolation
from ..graphs.forest import Forest
from .base import (
    Access,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    Read,
    ScriptedSession,
    Write,
    access_steps,
)


def _access_set(intents: Sequence[Intent]) -> List[Entity]:
    """``A(T)``: the entities with an explicit access step, in first-use
    order.  DTR (as reproduced here) supports read/write/access intents; the
    forest, not the data, is the dynamic part of this policy."""
    out: List[Entity] = []
    for intent in intents:
        if isinstance(intent, (Access, Read, Write)):
            if intent.entity not in out:
                out.append(intent.entity)
        else:
            raise PolicyViolation(
                "DT2", f"DTR supports access/read/write intents, not {intent!r}"
            )
    return out


class DtrContext(PolicyContext):
    """Shared state: the database forest plus active transactions' plans."""

    def __init__(self) -> None:
        self.forest = Forest()  # DT0: initially empty
        #: Active transactions -> the forest nodes their plan locks.
        self.plans: Dict[str, Set[Entity]] = {}
        #: Per transaction, the parent map of its planning-time tree
        #: (recorded so tree-lockedness can be audited offline).
        self.plan_parents: Dict[str, Dict[Entity, Optional[Entity]]] = {}
        #: Entities currently locked (maintained via session callbacks).
        self.locked: Dict[Entity, str] = {}
        self.join_log: List[Tuple[Entity, Entity]] = []
        self.delete_log: List[Entity] = []

    # ------------------------------------------------------------------
    # DT1 / DT2
    # ------------------------------------------------------------------

    def _ensure_tree(self, access: Sequence[Entity]) -> Entity:
        """Join/extend the forest so one tree contains all of ``access``;
        return that tree's root (rules DT1 + DT2)."""
        present = [e for e in access if e in self.forest]
        missing = [e for e in access if e not in self.forest]
        roots: List[Entity] = []
        for e in present:
            r = self.forest.root_of(e)
            if r not in roots:
                roots.append(r)
        if not roots:
            if not missing:
                raise PolicyViolation("DT2", "transaction accesses nothing")
            # DT1: connect the new entities into a tree (a star under the
            # first) — there is no existing tree to join.
            root = missing[0]
            self.forest.add_root(root)
            for e in missing[1:]:
                self.forest.add_child(root, e)
            return root
        # Join all involved trees under the first root.
        main = roots[0]
        for other in roots[1:]:
            self.forest.join(main, other)
            self.join_log.append((main, other))
        # Add missing entities as a tree joined under the main root.
        if missing:
            sub_root = missing[0]
            self.forest.add_root(sub_root)
            for e in missing[1:]:
                self.forest.add_child(sub_root, e)
            self.forest.join(main, sub_root)
            self.join_log.append((main, sub_root))
        return main

    def _plan_subtree(self, access: Sequence[Entity]) -> List[Entity]:
        """The nodes to lock: the union of paths from the LCA of ``access``
        down to each accessed entity, in crab (pre)order."""
        paths = [self.forest.path_from_root(e) for e in access]
        # LCA: the longest common prefix of the root paths.
        lca_index = 0
        while all(len(p) > lca_index for p in paths) and len(
            {p[lca_index] for p in paths}
        ) == 1:
            lca_index += 1
        if lca_index == 0:
            raise PolicyViolation("DT2", "access set spans multiple trees")
        lca = paths[0][lca_index - 1]
        needed: Set[Entity] = set()
        for p in paths:
            needed.update(p[lca_index - 1 :])
        # Preorder walk of the induced subtree from the LCA.
        order: List[Entity] = []

        def walk(node: Entity) -> None:
            order.append(node)
            for child in sorted(self.forest.children(node), key=repr):
                if child in needed:
                    walk(child)

        walk(lca)
        return order

    def begin(self, name: str, intents: Sequence[Intent]) -> PolicySession:
        intents = list(intents)
        access = _access_set(intents)
        self._ensure_tree(access)
        order = self._plan_subtree(access)
        parent_map = {n: self.forest.parent(n) for n in order}
        steps = _crab_steps(order, parent_map, set(access))
        self.plans[name] = set(order)
        self.plan_parents[name] = parent_map
        return DtrSession(name, self, steps)

    # ------------------------------------------------------------------
    # DT3
    # ------------------------------------------------------------------

    def can_delete(self, node: Entity) -> bool:
        """The DT3 side condition: the node is unlocked and not part of any
        active transaction's plan (so every active transaction stays
        tree-locked w.r.t. the forest minus the node)."""
        if node not in self.forest:
            return False
        if node in self.locked:
            return False
        return all(node not in plan for plan in self.plans.values())

    def cleanup(self, candidates: Sequence[Entity]) -> List[Entity]:
        """Delete every candidate node DT3 currently allows; returns the
        nodes removed."""
        removed: List[Entity] = []
        for node in candidates:
            if self.can_delete(node):
                self.forest.delete_node(node)
                self.delete_log.append(node)
                removed.append(node)
        return removed


class DtrSession(ScriptedSession):
    """A scripted DTR session that maintains the context's lock table and
    triggers DT3 cleanup at commit."""

    def __init__(self, name: str, context: DtrContext, steps: Sequence[Step]):
        super().__init__(name, steps)
        self.context = context

    def executed(self) -> None:
        step = self.peek()
        assert step is not None
        if step.is_lock:
            self.context.locked[step.entity] = self.name
        elif step.is_unlock:
            if self.context.locked.get(step.entity) == self.name:
                del self.context.locked[step.entity]
        super().executed()

    def on_commit(self) -> None:
        plan = self.context.plans.pop(self.name, set())
        self.context.plan_parents.pop(self.name, None)
        self.context.cleanup(sorted(plan, key=repr))

    def on_abort(self) -> None:
        self.on_commit()


def _crab_steps(
    order: Sequence[Entity],
    parent_map: Dict[Entity, Optional[Entity]],
    access: Set[Entity],
) -> List[Step]:
    """Emit a tree-locked crab walk: lock in preorder, access at lock time,
    unlock each node once its last planned child is locked (and its own
    access, if any, has been emitted)."""
    children: Dict[Entity, List[Entity]] = {n: [] for n in order}
    for n in order:
        p = parent_map[n]
        if p is not None and p in children:
            children[p].append(n)
    pending_children = {n: len(children[n]) for n in order}
    steps: List[Step] = []
    unlocked: Set[Entity] = set()

    def maybe_unlock(node: Entity) -> None:
        if node in unlocked:
            return
        if pending_children[node] == 0:
            unlocked.add(node)
            steps.append(Step(Operation.UNLOCK_EXCLUSIVE, node))

    for node in order:
        steps.append(Step(Operation.LOCK_EXCLUSIVE, node))
        if node in access:
            steps.extend(access_steps(node))
        p = parent_map[node]
        if p is not None and p in pending_children:
            pending_children[p] -= 1
            maybe_unlock(p)
    # Drain: unlock everything still held, leaves first (order is irrelevant
    # for tree-lockedness; deterministic for reproducibility).
    for node in reversed(order):
        maybe_unlock(node)
    return steps


class DtrPolicy(LockingPolicy):
    """Factory for DTR runs."""

    name = "DTR"
    modes = (LockMode.EXCLUSIVE,)

    def create_context(self, **kwargs) -> DtrContext:
        return DtrContext()


# ----------------------------------------------------------------------
# Offline tree-locking checker
# ----------------------------------------------------------------------


def check_tree_locked(
    txn: Transaction, parent_map: Dict[Entity, Optional[Entity]]
) -> List[str]:
    """Verify the tree-locking discipline of one locked transaction against
    the parent map of its planning-time tree.

    Checks: the first lock is unconstrained; every other ``(LX A)`` is
    preceded by ``(LX B)`` and followed by ``(U B)`` with ``B`` the parent of
    ``A``; no entity is locked twice.
    """
    violations: List[str] = []
    lock_positions: Dict[Entity, int] = {}
    unlock_positions: Dict[Entity, int] = {}
    for i, s in enumerate(txn.steps):
        if s.is_lock:
            if s.entity in lock_positions:
                violations.append(f"{txn.name} locks {s.entity!r} twice")
            else:
                lock_positions[s.entity] = i
        elif s.is_unlock:
            unlock_positions[s.entity] = i
    if not lock_positions:
        return violations
    first = min(lock_positions.values())
    for entity, pos in lock_positions.items():
        if pos == first:
            continue
        parent = parent_map.get(entity)
        if parent is None:
            violations.append(
                f"{txn.name} locks non-first node {entity!r} with no parent "
                f"in its tree"
            )
            continue
        ppos = lock_positions.get(parent)
        if ppos is None or ppos >= pos:
            violations.append(
                f"{txn.name} locks {entity!r} before its parent {parent!r}"
            )
        upos = unlock_positions.get(parent)
        if upos is not None and upos <= pos:
            violations.append(
                f"{txn.name} unlocks parent {parent!r} before locking {entity!r}"
            )
    return violations


def check_dtr_schedule(
    schedule,
    plan_parents: Dict[str, Dict[Entity, Optional[Entity]]],
) -> List[str]:
    """Offline audit of a DTR run: every transaction's locked projection is
    tree-locked w.r.t. its recorded planning tree, and data steps are
    covered by locks (AL1-style well-formedness is checked by the core)."""
    violations: List[str] = []
    for name in schedule.transactions:
        txn = schedule.projection(name)
        parents = plan_parents.get(name)
        if parents is None:
            violations.append(f"no recorded planning tree for {name}")
            continue
        violations.extend(check_tree_locked(txn, parents))
    return violations
