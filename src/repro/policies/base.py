"""Policy framework: how locking policies plug into schedules and the
simulator.

A *locking policy* in the paper is a relation ``P(T, T̄)`` between plain and
locked transactions, computed **dynamically**: which locked transaction
materialises depends on the structural state of the database when each step
executes.  We realise this with three cooperating pieces:

* :class:`LockingPolicy` — a factory describing the policy (name, lock modes
  used) and creating per-run :class:`PolicyContext` objects.
* :class:`PolicyContext` — the shared, policy-specific state of one
  concurrent run (e.g. the DDAG database graph, the DTR database forest, the
  altruistic wake bookkeeping).  It spawns one :class:`PolicySession` per
  transaction.
* :class:`PolicySession` — an online state machine that turns a sequence of
  high-level *intents* (:class:`Access`, :class:`InsertNode`, …) into locked
  steps, one at a time.  The simulator repeatedly asks for the pending step
  (:meth:`PolicySession.peek`), checks the policy-level admission verdict
  (:meth:`PolicySession.admission`), acquires locks through its lock manager,
  and confirms execution (:meth:`PolicySession.executed`).

Sessions *recompute* their pending step against the present shared state,
which is exactly how the paper's rules ("the present state of G" in rule L5)
behave; a step that was fine when planned can become inadmissible by the
time it runs, forcing a wait or an abort (the paper's Fig. 3 scenario).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.operations import LockMode
from ..core.steps import Entity, Step


# ----------------------------------------------------------------------
# Intents: the high-level operations a transaction wants to perform.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Access:
    """The paper's ACCESS: a READ immediately followed by a WRITE of one
    entity (Sections 4 and 5 define transactions in terms of it)."""

    entity: Entity


@dataclass(frozen=True)
class Read:
    """A plain READ (used by policies that support shared locks)."""

    entity: Entity


@dataclass(frozen=True)
class Write:
    """A plain WRITE."""

    entity: Entity


@dataclass(frozen=True)
class InsertNode:
    """Insert a node into the database graph, wired under ``parents``.

    Inserting the node inserts the node entity and one edge entity per
    parent (DDAG models both nodes and edges as lockable entities).
    """

    node: Entity
    parents: Tuple[Entity, ...] = ()


@dataclass(frozen=True)
class DeleteNode:
    """Delete a node (and, for DDAG, its incident edge entities)."""

    node: Entity


@dataclass(frozen=True)
class InsertEdge:
    """Insert edge ``(u, v)`` into the database graph."""

    u: Entity
    v: Entity


@dataclass(frozen=True)
class DeleteEdge:
    """Delete edge ``(u, v)`` from the database graph."""

    u: Entity
    v: Entity


Intent = Union[Access, Read, Write, InsertNode, DeleteNode, InsertEdge, DeleteEdge]


def edge_entity(u: Entity, v: Entity) -> Tuple[str, Entity, Entity]:
    """The lockable entity representing edge ``(u, v)``."""
    return ("edge", u, v)


def intent_entities(intent: Intent) -> Tuple[Entity, ...]:
    """The entities an intent touches (nodes only; edges expand to their
    endpoints plus the edge entity in the policies that need it)."""
    if isinstance(intent, (Access, Read, Write)):
        return (intent.entity,)
    if isinstance(intent, InsertNode):
        return (intent.node, *intent.parents)
    if isinstance(intent, DeleteNode):
        return (intent.node,)
    if isinstance(intent, (InsertEdge, DeleteEdge)):
        return (intent.u, intent.v)
    raise TypeError(f"unknown intent {intent!r}")


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------


class Admission(enum.Enum):
    """Policy-level verdict for the pending step."""

    PROCEED = "proceed"
    WAIT = "wait"
    ABORT = "abort"


@dataclass
class AdmissionResult:
    verdict: Admission
    #: For WAIT: the transactions being waited on (policy-level waits-for
    #: edges, merged with lock waits for deadlock detection).
    waiting_on: Tuple[str, ...] = ()
    #: For ABORT: the violated rule and explanation.
    reason: Optional[str] = None


PROCEED = AdmissionResult(Admission.PROCEED)


class PolicySession(ABC):
    """Per-transaction state machine producing locked steps."""

    #: Whether :meth:`peek`/:meth:`admission` consult *shared* mutable state
    #: (the DDAG graph, the altruistic wake bookkeeping).  A session may set
    #: this False only when its :meth:`peek` is a pure function of its own
    #: state *and* it keeps the default always-PROCEED :meth:`admission`;
    #: the event-driven scheduler then skips it until a lock event or its
    #: own execution invalidates the cached classification.  (Overriding
    #: :meth:`admission` makes the scheduler treat the session as dynamic
    #: regardless of this flag.)  A dynamic session is re-evaluated every
    #: tick unless it also declares :meth:`admission_dependencies`, in
    #: which case the scheduler re-evaluates it only when a declared
    #: channel is notified.  Defaults to True — the conservative choice
    #: for custom sessions.
    dynamic: bool = True

    def __init__(self, name: str):
        self.name = name

    @abstractmethod
    def peek(self) -> Optional[Step]:
        """The next step this transaction wants to execute, or ``None`` when
        it has finished all its intents (ready to commit)."""

    @abstractmethod
    def executed(self) -> None:
        """Confirm that the step returned by :meth:`peek` was executed;
        advance the state machine and update shared context state."""

    def admission(self) -> AdmissionResult:
        """Policy-level admission check for the pending step against the
        *present* shared state.  Default: always proceed."""
        return PROCEED

    def admission_dependencies(self) -> Optional[Iterable[Hashable]]:
        """Declare the *invalidation channels* whose change can flip this
        session's cached scheduling decision (its :meth:`admission` verdict
        or the ``waiting_on`` set attached to a WAIT).

        ``None`` (the default) means the session cannot enumerate them; the
        event-driven scheduler then falls back to re-examining the session
        every tick — the conservative behaviour dynamic sessions always had.

        Returning an iterable of hashable channel keys (possibly empty)
        opts the session into policy-aware invalidation: the scheduler
        caches its classification, subscribes it to the declared channels,
        and re-derives the classification only when

        * the context reports a change on a subscribed channel
          (:meth:`PolicyContext.notify_changed`),
        * a lock event touches the session (wake-up, watched acquire), or
        * the session executes a step of its own.

        Contract: between two of the session's own executions, **every**
        shared-state mutation that can alter its verdict must be covered by
        a declared channel that the mutating code notifies; over-reporting
        (spurious notifications, extra channels) is always safe, silent
        under-reporting breaks naive/event equivalence.  The declaration is
        re-read each time the scheduler caches a classification, so it may
        track the pending step; a session that has returned an iterable
        must keep returning iterables for the rest of its life.
        """
        return None

    def on_commit(self) -> None:
        """Called when the transaction finishes (all intents executed)."""

    def on_abort(self) -> None:
        """Called when the transaction is aborted; must release any shared
        context bookkeeping (lock release is the simulator's job)."""

    @property
    def has_structural_effects(self) -> bool:
        """Whether the session has already executed INSERT/DELETE steps
        (used to pick abort victims that are cheap to erase)."""
        return False


class PolicyContext(ABC):
    """Shared state of one concurrent run under a policy.

    Besides spawning sessions, the context is the policy side of the
    scheduler's invalidation protocol: policy code that mutates shared
    state (a graph edge insert, a donation, a wake dissolving) reports the
    affected channels through :meth:`notify_changed`, and the event-driven
    scheduler — having subscribed each session to the channels it declared
    via :meth:`PolicySession.admission_dependencies` — re-examines exactly
    the sessions whose cached verdicts the change can flip.
    """

    #: Change listener installed by the event-driven scheduler (class-level
    #: ``None`` default so subclasses need not call ``super().__init__``).
    _change_listener: Optional[Callable[[Tuple[Hashable, ...]], None]] = None

    @abstractmethod
    def begin(self, name: str, intents: Sequence[Intent]) -> PolicySession:
        """Start a transaction with the given intent script."""

    def set_change_listener(
        self, listener: Optional[Callable[[Tuple[Hashable, ...]], None]]
    ) -> None:
        """Install the scheduler callback that receives change
        notifications (one per run; the naive engine installs none)."""
        self._change_listener = listener

    def notify_changed(self, channels: Iterable[Hashable]) -> None:
        """Report that shared state observable through ``channels`` changed.

        Called by policy code on structural mutations and wake-state
        updates; a no-op when no scheduler listener is installed (the
        naive engine re-checks everything every tick anyway)."""
        if self._change_listener is not None:
            self._change_listener(tuple(channels))

    def entities(self) -> Iterable[Entity]:
        """The entities currently known to the context (for properness
        bookkeeping in the simulator); override where meaningful."""
        return ()


class LockingPolicy(ABC):
    """Factory + metadata for one locking policy."""

    #: Human-readable policy name (used in reports and benchmarks).
    name: str = "abstract"
    #: Lock modes the policy may request.
    modes: Tuple[LockMode, ...] = (LockMode.EXCLUSIVE,)

    @abstractmethod
    def create_context(self, **kwargs) -> PolicyContext:
        """Create the shared state for one run (e.g. the database graph)."""


# ----------------------------------------------------------------------
# Helpers shared by concrete policies
# ----------------------------------------------------------------------


def access_steps(entity: Entity) -> Tuple[Step, ...]:
    """The data steps of one ACCESS: ``(R e) (W e)``."""
    from ..core.operations import Operation

    return (Step(Operation.READ, entity), Step(Operation.WRITE, entity))


class ScriptedSession(PolicySession):
    """A session that plays a precomputed list of steps, re-planning nothing.

    Used by policies whose locked transaction can be computed up front (the
    DTR policy precomputes the locked transaction when the transaction
    begins — Section 6 notes this explicitly — and strict 2PL needs no
    dynamic decisions either).
    """

    dynamic = False

    def __init__(self, name: str, steps: Sequence[Step]):
        super().__init__(name)
        self._steps: List[Step] = list(steps)
        self._cursor = 0
        self._structural = False

    def peek(self) -> Optional[Step]:
        if self._cursor >= len(self._steps):
            return None
        return self._steps[self._cursor]

    def executed(self) -> None:
        step = self._steps[self._cursor]
        if step.op.is_structural:
            self._structural = True
        self._cursor += 1

    @property
    def has_structural_effects(self) -> bool:
        return self._structural

    @property
    def remaining(self) -> int:
        return len(self._steps) - self._cursor
