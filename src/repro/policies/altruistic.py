"""Altruistic locking — Section 5 of the paper [SGMS94].

Designed for long-lived transactions: a transaction may *donate* (unlock)
items it is finished with before reaching its **locked point** (the instant
it acquires its last lock).  A transaction that picks up a donated item
enters the donor's **wake** and is then confined to donated items until the
donor reaches its locked point.  Rules (basic, exclusive-locks-only
version):

* **AL1** — lock an item before any INSERT/DELETE/ACCESS on it.
* **AL2** — if ``T_i`` is in the wake of another active ``T_j``, then all
  items locked by ``T_i`` so far must have been unlocked by ``T_j`` in the
  past.
* **AL3** — a transaction may lock an item only once.

The online session enforces AL2 *prospectively*: before locking ``A`` it
checks every active pre-locked-point donor ``T_j`` whose wake it is in (or
would enter by taking ``A``); when the constraint fails the session WAITS
until the donor reaches its locked point or finishes, at which point the
wake dissolves ("Once T1 reaches its locked point … T2 is no longer in the
wake of T1 and can lock any entity it needs" — Fig. 4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import LockMode, Operation
from ..core.schedules import Schedule
from ..core.steps import Entity, Step
from ..exceptions import PolicyViolation
from .base import (
    Access,
    Admission,
    AdmissionResult,
    DeleteNode,
    InsertNode,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    PROCEED,
    Read,
    Write,
    access_steps,
)


def al_item_channel(item: Entity) -> Tuple[str, Entity]:
    """Invalidation channel for the wake state of ``item``: whether it sits
    in some active pre-locked-point donor's donated set.  An AL2 verdict
    can only flip through the items of ``locked_past ∪ {pending}``, so
    donations, locked-point arrivals, and donor departures notify exactly
    the item channels they touch."""
    return ("al-item", item)


class AltruisticContext(PolicyContext):
    """Shared wake bookkeeping across the active transactions."""

    def __init__(self, donate_immediately: bool = True) -> None:
        self.donate_immediately = donate_immediately
        self.sessions: Dict[str, "AltruisticSession"] = {}

    def begin(self, name: str, intents: Sequence[Intent]) -> "AltruisticSession":
        session = AltruisticSession(
            name, self, intents, donate_immediately=self.donate_immediately
        )
        self.sessions[name] = session  # repro: noqa[RPR002] a fresh session has donated nothing and reached no locked point, so no AL2 verdict can change
        return session

    def active_donors(self, exclude: str) -> List["AltruisticSession"]:
        """Active transactions that have donated items and have not reached
        their locked point — the ones whose wakes constrain others."""
        return [
            s
            for n, s in self.sessions.items()
            if n != exclude and s.donated and not s.reached_locked_point
        ]

    def wake_changed(self, items) -> None:
        """The wake state of ``items`` changed (a donation, a donor
        reaching its locked point, or a pre-locked-point donor leaving):
        invalidate the sessions whose cached AL2 verdict involves them."""
        self.notify_changed(tuple(al_item_channel(x) for x in items))


class AltruisticSession(PolicySession):
    """Online altruistic-locking state machine for one transaction.

    ``donate_immediately`` unlocks each item as soon as its access is done
    (maximal altruism); otherwise items are held to the end (degenerating to
    2PL).  The locked point is computed from the intent script: after the
    lock for the last distinct item is acquired, the transaction is
    post-locked-point.
    """

    #: AL2 admission consults the other active sessions' donations and
    #: locked points — shared state, but reachable only through the items
    #: this session has locked or wants next, which is exactly what
    #: :meth:`admission_dependencies` declares; the scheduler re-examines
    #: the session only when one of those item channels is notified.
    dynamic = True

    def __init__(
        self,
        name: str,
        context: AltruisticContext,
        intents: Sequence[Intent],
        donate_immediately: bool = True,
    ):
        super().__init__(name)
        self.context = context
        self.intents = list(intents)
        self.donate_immediately = donate_immediately
        self.cursor = 0
        self.queue: List[Step] = []
        self.locked_past: Set[Entity] = set()
        self.held: Set[Entity] = set()
        self.donated: Set[Entity] = set()
        self._structural = False
        self._draining = False
        # Distinct items in first-use order determine the locked point.
        self._items: List[Entity] = []
        for intent in self.intents:
            for e in _intent_item(intent):
                if e not in self._items:
                    self._items.append(e)

    # ------------------------------------------------------------------

    @property
    def reached_locked_point(self) -> bool:
        """True once every distinct item of the script has been locked."""
        return all(e in self.locked_past for e in self._items)

    def in_wake_of(self, donor: "AltruisticSession") -> bool:
        """Has this transaction locked an item donated by ``donor`` while
        ``donor`` is pre-locked-point?  (The wake definition of §5.)"""
        return bool(self.locked_past & donor.donated) and not donor.reached_locked_point

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _expand(self, intent: Intent) -> List[Step]:
        steps: List[Step] = []

        def lock(entity: Entity) -> None:
            if entity in self.held:
                return
            if entity in self.locked_past:
                raise PolicyViolation(
                    "AL3", f"{self.name} would lock {entity!r} twice"
                )
            steps.append(Step(Operation.LOCK_EXCLUSIVE, entity))

        def maybe_donate(entity: Entity) -> None:
            if self.donate_immediately and not _needed_later(
                self.intents, self.cursor, entity
            ):
                steps.append(Step(Operation.UNLOCK_EXCLUSIVE, entity))

        if isinstance(intent, Access):
            lock(intent.entity)
            steps.extend(access_steps(intent.entity))
            maybe_donate(intent.entity)
        elif isinstance(intent, Read):
            lock(intent.entity)
            steps.append(Step(Operation.READ, intent.entity))
            maybe_donate(intent.entity)
        elif isinstance(intent, Write):
            lock(intent.entity)
            steps.append(Step(Operation.WRITE, intent.entity))
            maybe_donate(intent.entity)
        elif isinstance(intent, InsertNode):
            lock(intent.node)
            steps.append(Step(Operation.INSERT, intent.node))
            maybe_donate(intent.node)
        elif isinstance(intent, DeleteNode):
            lock(intent.node)
            steps.append(Step(Operation.DELETE, intent.node))
            maybe_donate(intent.node)
        else:
            raise PolicyViolation("AL1", f"unsupported intent {intent!r}")
        return steps

    # ------------------------------------------------------------------
    # PolicySession protocol
    # ------------------------------------------------------------------

    def peek(self) -> Optional[Step]:
        while not self.queue:
            if self.cursor >= len(self.intents):
                if not self._draining:
                    self._draining = True
                    self.queue.extend(
                        Step(Operation.UNLOCK_EXCLUSIVE, e)
                        for e in sorted(self.held, key=repr)
                    )
                    continue
                return None
            intent = self.intents[self.cursor]
            self.cursor += 1
            self.queue.extend(self._expand(intent))
        return self.queue[0]

    def admission(self) -> AdmissionResult:
        """AL2 enforcement for the pending lock step."""
        step = self.queue[0] if self.queue else None
        if step is None or not step.is_lock:
            return PROCEED
        entity = step.entity
        blockers: List[str] = []
        after = self.locked_past | {entity}
        for donor in self.context.active_donors(exclude=self.name):
            if after & donor.donated and not after.issubset(donor.donated):
                # Taking this lock would put us (or keep us) in donor's wake
                # while holding/wanting non-donated items: AL2 forbids it
                # until the donor reaches its locked point.
                blockers.append(donor.name)
        if blockers:
            return AdmissionResult(Admission.WAIT, waiting_on=tuple(blockers))
        return PROCEED

    def admission_dependencies(self):
        """An AL2 verdict for a pending lock reads, per active donor, only
        ``after & donor.donated`` and ``after ⊆ donor.donated`` with
        ``after = locked_past ∪ {pending}`` — both can change only through
        the wake state of items *in* ``after``, so those item channels are
        the complete dependency set."""
        step = self.queue[0] if self.queue else None
        if step is None or not step.is_lock:
            return ()
        return tuple(
            al_item_channel(x)
            for x in sorted(self.locked_past | {step.entity}, key=repr)
        )

    def executed(self) -> None:
        step = self.queue.pop(0)
        if step.is_lock:
            before = self.reached_locked_point
            self.locked_past.add(step.entity)
            self.held.add(step.entity)
            if self.donated and not before and self.reached_locked_point:
                # The wake dissolves: sessions confined to our donations
                # may now lock anything (the Fig. 4 release moment).
                self.context.wake_changed(sorted(self.donated, key=repr))
        elif step.is_unlock:
            self.held.discard(step.entity)
            if not self.reached_locked_point:
                self.donated.add(step.entity)
                self.context.wake_changed((step.entity,))
        elif step.op.is_structural:
            self._structural = True

    def on_commit(self) -> None:
        self.context.sessions.pop(self.name, None)
        if self.donated and not self.reached_locked_point:
            self.context.wake_changed(sorted(self.donated, key=repr))

    def on_abort(self) -> None:
        self.context.sessions.pop(self.name, None)
        if self.donated and not self.reached_locked_point:
            self.context.wake_changed(sorted(self.donated, key=repr))

    @property
    def has_structural_effects(self) -> bool:
        return self._structural


def _intent_item(intent: Intent) -> Tuple[Entity, ...]:
    if isinstance(intent, (Access, Read, Write)):
        return (intent.entity,)
    if isinstance(intent, InsertNode):
        return (intent.node,)
    if isinstance(intent, DeleteNode):
        return (intent.node,)
    return ()


def _needed_later(intents: Sequence[Intent], cursor: int, entity: Entity) -> bool:
    return any(entity in _intent_item(i) for i in intents[cursor:])


class AltruisticPolicy(LockingPolicy):
    """Factory for altruistic-locking runs."""

    name = "Altruistic"
    modes = (LockMode.EXCLUSIVE,)

    def __init__(self, donate_immediately: bool = True):
        self.donate_immediately = donate_immediately

    def create_context(self, **kwargs) -> AltruisticContext:
        return AltruisticContext(donate_immediately=self.donate_immediately)


# ----------------------------------------------------------------------
# Offline rule checker
# ----------------------------------------------------------------------


def check_altruistic_schedule(schedule: Schedule) -> List[str]:
    """Verify a recorded schedule against AL1–AL3.

    Replays the events, tracking each transaction's lock history, donations,
    locked points (computed from the *full* transactions, which the schedule
    carries), and wake membership.  Returns violation descriptions.
    """
    violations: List[str] = []
    locked_past: Dict[str, Set[Entity]] = {}
    held: Dict[str, Set[Entity]] = {}
    donated: Dict[str, Set[Entity]] = {}
    # Locked point per transaction: index (within its own steps) of its last
    # LOCK step; a transaction is pre-locked-point while its progress is at
    # or before that index.
    lock_points: Dict[str, Optional[int]] = {
        name: txn.locked_point() for name, txn in schedule.transactions.items()
    }
    progress: Dict[str, int] = {name: 0 for name in schedule.transactions}

    def pre_locked_point(name: str) -> bool:
        point = lock_points[name]
        return point is not None and progress[name] <= point

    for pos, event in enumerate(schedule.events):
        txn, step = event.txn, event.step
        past = locked_past.setdefault(txn, set())
        have = held.setdefault(txn, set())
        gave = donated.setdefault(txn, set())
        if step.is_lock:
            if step.entity in past:
                violations.append(
                    f"event {pos}: {txn} locks {step.entity!r} twice (AL3)"
                )
            past.add(step.entity)
            have.add(step.entity)
            # AL2: check wake constraints against every other transaction
            # that is still pre-locked-point and has donated items.
            for other in schedule.transactions:
                if other == txn or not pre_locked_point(other):
                    continue
                other_donated = donated.get(other, set())
                if past & other_donated and not past.issubset(other_donated):
                    outside = sorted(past - other_donated, key=repr)
                    violations.append(
                        f"event {pos}: {txn} is in the wake of {other} but "
                        f"has locked non-donated items {outside} (AL2)"
                    )
        elif step.is_unlock:
            if step.entity not in have:
                violations.append(
                    f"event {pos}: {txn} unlocks {step.entity!r} it does not hold"
                )
            have.discard(step.entity)
            if pre_locked_point(txn):
                gave.add(step.entity)
        else:
            if step.entity not in have:
                violations.append(
                    f"event {pos}: {txn} performs {step} without a lock (AL1)"
                )
        progress[txn] += 1
    return violations
