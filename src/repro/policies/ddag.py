"""The Dynamic Directed Acyclic Graph (DDAG) locking policy — Section 4.

The database is a rooted DAG whose nodes *and* edges are lockable entities;
transactions traverse it performing ACCESS, INSERT and DELETE operations.
The locking rules (exclusive locks only, as in the paper's version):

* **L1** — before any INSERT/DELETE/ACCESS on a node ``A`` (an edge
  ``(A, B)``), lock ``A`` (both ``A`` and ``B``).
* **L2** — a node that is being inserted can be locked at any time.
* **L3** — a node can be locked by a transaction at most once.
* **L4** — a transaction may begin by locking any node.
* **L5** — other than the first node, a node can be locked only if **all its
  predecessors in the present state of G** have been locked in the past and
  the transaction **presently holds** a lock on at least one of them.

Rule L5 consults the *present* graph: a concurrent edge insertion can
retroactively invalidate a transaction's plan, forcing it to abort and
restart from the new dominator (the paper's Fig. 3 walk-through).  The
online :class:`DdagSession` reproduces exactly that behaviour through its
admission check.

Implementation notes kept faithful to the model of Section 2:

* The paper's L1 locks only the *endpoint nodes* for edge operations; the
  core model's well-formedness additionally wants the written entity itself
  exclusively locked, so sessions wrap each edge INSERT/DELETE in a
  lock/unlock of the edge entity.  Both endpoints being exclusively held
  makes this lock uncontended; it adds no new conflicts beyond those through
  the endpoints.
* Deleted nodes are never reinserted (the standing assumption of Section 4),
  enforced via tombstones in the shared context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.operations import LockMode, Operation
from ..core.schedules import Schedule
from ..core.steps import Entity, Step
from ..exceptions import PolicyViolation
from ..graphs.dag import RootedDag
from .base import (
    Access,
    AdmissionResult,
    Admission,
    DeleteEdge,
    DeleteNode,
    InsertEdge,
    InsertNode,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    PROCEED,
    access_steps,
    edge_entity,
)


def _is_edge_entity(entity: Entity) -> bool:
    return isinstance(entity, tuple) and len(entity) == 3 and entity[0] == "edge"


def ddag_node_channel(node: Entity) -> Tuple[str, Entity]:
    """Invalidation channel for rule L5's view of ``node``: its existence
    and its in-edge set in the present graph.  Every graph mutation that
    can change either notifies this channel."""
    return ("ddag-node", node)


class Unlock:
    """An explicit unlock intent, for scripting the paper's exact traces.

    With ``auto_release=False`` sessions release locks only where the intent
    script says so (plus a final drain at commit), which is how the Fig. 3
    and Fig. 4 walk-throughs are reproduced step for step.
    """

    def __init__(self, entity: Entity):
        self.entity = entity

    def __repr__(self) -> str:
        return f"Unlock({self.entity!r})"


class DdagContext(PolicyContext):
    """Shared state: the live database graph plus tombstones."""

    def __init__(self, dag: RootedDag, auto_release: bool = True):
        self.dag = dag
        self.dag.strict = False
        self.auto_release = auto_release
        self.tombstones: Set[Entity] = set()
        self.sessions: Dict[str, "DdagSession"] = {}

    def begin(self, name: str, intents: Sequence[Intent]) -> "DdagSession":
        session = DdagSession(name, self, intents, auto_release=self.auto_release)
        self.sessions[name] = session
        return session

    def entities(self):
        return self.dag.nodes()


class DdagSession(PolicySession):
    """Online DDAG state machine for one transaction."""

    #: Rule L5 consults the *present* graph — but only the pending node's
    #: region of it, so instead of an every-tick re-check the session
    #: declares that region via :meth:`admission_dependencies` and is
    #: re-examined only when a graph mutation notifies it.
    dynamic = True

    def __init__(
        self,
        name: str,
        context: DdagContext,
        intents: Sequence[Intent],
        auto_release: bool = True,
    ):
        super().__init__(name)
        self.context = context
        self.intents: List[Intent] = list(intents)
        self.auto_release = auto_release
        self.cursor = 0
        self.queue: List[Step] = []
        self.locked_past: Set[Entity] = set()
        self.held: Set[Entity] = set()
        self.inserting: Set[Entity] = set()
        self._structural = False
        self._draining = False

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _needs_lock(self, node: Entity) -> bool:
        return node not in self.locked_past

    def _expand(self, intent: Intent) -> List[Step]:
        """Turn the next intent into locked steps, against the present
        graph.  Raises :class:`PolicyViolation` for unservable intents."""
        dag = self.context.dag
        steps: List[Step] = []

        def lock_node(node: Entity, being_inserted: bool = False) -> None:
            if node in self.locked_past:
                if node not in self.held:
                    raise PolicyViolation(
                        "L3", f"{self.name} needs {node!r} again after unlocking it"
                    )
                return
            if being_inserted:
                self.inserting.add(node)
            steps.append(Step(Operation.LOCK_EXCLUSIVE, node))

        if isinstance(intent, Unlock):
            if intent.entity not in self.held:
                raise PolicyViolation(
                    "L1", f"{self.name} unlocks {intent.entity!r} which it does not hold"
                )
            steps.append(Step(Operation.UNLOCK_EXCLUSIVE, intent.entity))
            return steps

        if isinstance(intent, Access):
            lock_node(intent.entity)
            steps.extend(access_steps(intent.entity))
            return steps

        if isinstance(intent, InsertNode):
            if intent.node in self.context.tombstones:
                raise PolicyViolation(
                    "L2",
                    f"{self.name} reinserts deleted node {intent.node!r}; "
                    f"deleted entities may not be reinserted",
                )
            for p in intent.parents:
                if p not in self.held:
                    raise PolicyViolation(
                        "L1",
                        f"{self.name} inserts {intent.node!r} under unheld "
                        f"parent {p!r}",
                    )
            lock_node(intent.node, being_inserted=True)
            steps.append(Step(Operation.INSERT, intent.node))
            for p in intent.parents:
                e = edge_entity(p, intent.node)
                steps.append(Step(Operation.LOCK_EXCLUSIVE, e))
                steps.append(Step(Operation.INSERT, e))
                steps.append(Step(Operation.UNLOCK_EXCLUSIVE, e))
            return steps

        if isinstance(intent, InsertEdge):
            for end in (intent.u, intent.v):
                if end not in self.held:
                    raise PolicyViolation(
                        "L1",
                        f"{self.name} inserts edge ({intent.u!r}, {intent.v!r}) "
                        f"without holding {end!r}",
                    )
            e = edge_entity(intent.u, intent.v)
            steps.append(Step(Operation.LOCK_EXCLUSIVE, e))
            steps.append(Step(Operation.INSERT, e))
            steps.append(Step(Operation.UNLOCK_EXCLUSIVE, e))
            return steps

        if isinstance(intent, DeleteEdge):
            for end in (intent.u, intent.v):
                if end not in self.held:
                    raise PolicyViolation(
                        "L1",
                        f"{self.name} deletes edge ({intent.u!r}, {intent.v!r}) "
                        f"without holding {end!r}",
                    )
            e = edge_entity(intent.u, intent.v)
            steps.append(Step(Operation.LOCK_EXCLUSIVE, e))
            steps.append(Step(Operation.DELETE, e))
            steps.append(Step(Operation.UNLOCK_EXCLUSIVE, e))
            return steps

        if isinstance(intent, DeleteNode):
            if intent.node not in self.held:
                raise PolicyViolation(
                    "L1", f"{self.name} deletes unheld node {intent.node!r}"
                )
            if dag.graph.in_degree(intent.node) or dag.graph.out_degree(intent.node):
                raise PolicyViolation(
                    "L1",
                    f"{self.name} deletes node {intent.node!r} with incident "
                    f"edges; delete the edges first",
                )
            steps.append(Step(Operation.DELETE, intent.node))
            return steps

        raise PolicyViolation("L1", f"unsupported intent {intent!r}")

    def _auto_releases(self) -> List[Step]:
        """Nodes no longer needed: not accessed by a future intent and not a
        current-graph predecessor of a future, not-yet-locked entity."""
        if not self.auto_release:
            return []
        dag = self.context.dag
        future_nodes: Set[Entity] = set()
        for intent in self.intents[self.cursor :]:
            if isinstance(intent, Unlock):
                continue
            if isinstance(intent, Access):
                future_nodes.add(intent.entity)
            elif isinstance(intent, InsertNode):
                future_nodes.add(intent.node)
                future_nodes.update(intent.parents)
            elif isinstance(intent, DeleteNode):
                future_nodes.add(intent.node)
            elif isinstance(intent, (InsertEdge, DeleteEdge)):
                future_nodes.update((intent.u, intent.v))
        releases: List[Step] = []
        for node in sorted(self.held, key=repr):
            if _is_edge_entity(node):
                continue
            if node in future_nodes:
                continue
            needed_as_pred = any(
                target not in self.locked_past
                and target in dag.graph
                and node in dag.predecessors(target)
                for target in future_nodes
            )
            if not needed_as_pred:
                releases.append(Step(Operation.UNLOCK_EXCLUSIVE, node))
        return releases

    # ------------------------------------------------------------------
    # PolicySession protocol
    # ------------------------------------------------------------------

    def peek(self) -> Optional[Step]:
        while not self.queue:
            if self.cursor >= len(self.intents):
                if not self._draining:
                    self._draining = True
                    self.queue.extend(
                        Step(Operation.UNLOCK_EXCLUSIVE, e)
                        for e in sorted(self.held, key=repr)
                    )
                    continue
                return None
            intent = self.intents[self.cursor]
            self.cursor += 1
            self.queue.extend(self._expand(intent))
            self.queue.extend(self._auto_releases())
        return self.queue[0]

    def admission(self) -> AdmissionResult:
        """Re-validate the pending step against the **present** graph (the
        operative clause of rule L5)."""
        step = self.queue[0] if self.queue else None
        if step is None or not step.is_lock:
            return PROCEED
        node = step.entity
        if _is_edge_entity(node):
            return PROCEED  # implied lock; endpoints already held
        if node in self.inserting:
            return PROCEED  # L2
        if not self.locked_past:
            return PROCEED  # L4
        dag = self.context.dag
        if node not in dag.graph:
            return AdmissionResult(
                Admission.ABORT,
                reason=f"L5: node {node!r} no longer exists in the graph",
            )
        preds = dag.predecessors(node)
        if not preds.issubset(self.locked_past):
            missing = sorted(preds - self.locked_past, key=repr)
            return AdmissionResult(
                Admission.ABORT,
                reason=(
                    f"L5: {self.name} has not locked predecessors {missing} "
                    f"of {node!r} in the present graph"
                ),
            )
        if not preds & self.held:
            return AdmissionResult(
                Admission.ABORT,
                reason=(
                    f"L5: {self.name} holds no predecessor of {node!r} "
                    f"at lock time"
                ),
            )
        return PROCEED

    def admission_dependencies(self):
        """The L5 verdict for a pending node lock depends only on that
        node's existence and in-edges in the present graph; everything else
        the verdict reads (``locked_past``, ``held``, ``inserting``) is
        session-local and changes only when this session executes — which
        re-derives the cached classification anyway."""
        step = self.queue[0] if self.queue else None
        if step is None or not step.is_lock:
            return ()
        node = step.entity
        if _is_edge_entity(node):
            return ()  # implied lock; endpoints already held
        if node in self.inserting:
            return ()  # L2: insertable at any time
        if not self.locked_past:
            return ()  # L4: the first lock is unconditional
        return (ddag_node_channel(node),)

    def executed(self) -> None:
        step = self.queue.pop(0)
        dag = self.context.dag
        if step.is_lock:
            self.locked_past.add(step.entity)
            self.held.add(step.entity)
        elif step.is_unlock:
            self.held.discard(step.entity)
        elif step.op is Operation.INSERT:
            self._structural = True
            if _is_edge_entity(step.entity):
                _, u, v = step.entity
                dag.graph.add_edge(u, v)
                assert dag.graph.is_acyclic(), "workload created a cycle"
                self.context.notify_changed((ddag_node_channel(v),))
            else:
                dag.graph.add_node(step.entity)
                self.context.notify_changed((ddag_node_channel(step.entity),))
        elif step.op is Operation.DELETE:
            self._structural = True
            if _is_edge_entity(step.entity):
                _, u, v = step.entity
                dag.graph.remove_edge(u, v)
                self.context.notify_changed((ddag_node_channel(v),))
            else:
                dag.graph.remove_node(step.entity)
                self.context.tombstones.add(step.entity)
                self.context.notify_changed((ddag_node_channel(step.entity),))

    def on_commit(self) -> None:
        self.context.sessions.pop(self.name, None)

    def on_abort(self) -> None:
        self.context.sessions.pop(self.name, None)

    @property
    def has_structural_effects(self) -> bool:
        return self._structural


class DdagPolicy(LockingPolicy):
    """Factory for DDAG runs over a given rooted DAG."""

    name = "DDAG"
    modes = (LockMode.EXCLUSIVE,)

    def __init__(self, auto_release: bool = True):
        self.auto_release = auto_release

    def create_context(self, dag: Optional[RootedDag] = None, **kwargs) -> DdagContext:
        if dag is None:
            raise ValueError("DdagPolicy.create_context requires dag=RootedDag(...)")
        return DdagContext(dag, auto_release=self.auto_release)


# ----------------------------------------------------------------------
# Offline rule checker
# ----------------------------------------------------------------------


def check_ddag_schedule(
    schedule: Schedule, initial: RootedDag
) -> List[str]:
    """Verify that a recorded schedule obeys rules L1–L5 step by step.

    Replays the schedule against a copy of ``initial``, maintaining each
    transaction's lock history and the evolving graph; returns a list of
    violation descriptions (empty == compliant).  Used to validate simulator
    output and hand-written figure traces.
    """
    dag = initial.snapshot()
    dag.strict = False
    violations: List[str] = []
    locked_past: Dict[str, Set[Entity]] = {}
    held: Dict[str, Set[Entity]] = {}
    tombstones: Set[Entity] = set()

    for pos, event in enumerate(schedule.events):
        txn, step = event.txn, event.step
        past = locked_past.setdefault(txn, set())
        have = held.setdefault(txn, set())
        entity = step.entity
        if step.is_lock:
            if _is_edge_entity(entity):
                _, u, v = entity
                for end in (u, v):
                    if end not in have:
                        violations.append(
                            f"event {pos}: {txn} locks edge {entity!r} without "
                            f"holding endpoint {end!r} (L1)"
                        )
                have.add(entity)
                past.add(entity)
                continue
            if entity in past:
                violations.append(
                    f"event {pos}: {txn} locks node {entity!r} twice (L3)"
                )
            node_exists = entity in dag.graph
            first = not any(not _is_edge_entity(e) for e in past)
            if not first and node_exists:
                preds = dag.predecessors(entity)
                if not preds.issubset(past):
                    violations.append(
                        f"event {pos}: {txn} locks {entity!r} without having "
                        f"locked all present predecessors (L5)"
                    )
                elif preds and not preds & have:
                    violations.append(
                        f"event {pos}: {txn} locks {entity!r} while holding no "
                        f"predecessor (L5)"
                    )
            if not first and not node_exists and entity in tombstones:
                violations.append(
                    f"event {pos}: {txn} locks deleted node {entity!r} (L2)"
                )
            past.add(entity)
            have.add(entity)
        elif step.is_unlock:
            if entity not in have:
                violations.append(
                    f"event {pos}: {txn} unlocks {entity!r} which it does not hold"
                )
            have.discard(entity)
        else:
            if entity not in have:
                violations.append(
                    f"event {pos}: {txn} performs {step} without a lock (L1)"
                )
            if _is_edge_entity(entity):
                _, u, v = entity
                for end in (u, v):
                    if end not in have:
                        violations.append(
                            f"event {pos}: {txn} performs {step} without "
                            f"holding endpoint {end!r} (L1)"
                        )
                if step.op is Operation.INSERT:
                    dag.graph.add_edge(u, v)
                elif step.op is Operation.DELETE:
                    if dag.graph.has_edge(u, v):
                        dag.graph.remove_edge(u, v)
                    else:
                        violations.append(
                            f"event {pos}: {txn} deletes missing edge {entity!r}"
                        )
            else:
                if step.op is Operation.INSERT:
                    if entity in tombstones:
                        violations.append(
                            f"event {pos}: {txn} reinserts deleted node {entity!r}"
                        )
                    dag.graph.add_node(entity)
                elif step.op is Operation.DELETE:
                    if entity in dag.graph:
                        dag.graph.remove_node(entity)
                        tombstones.add(entity)
                    else:
                        violations.append(
                            f"event {pos}: {txn} deletes missing node {entity!r}"
                        )
    return violations
