"""Two-phase locking baselines.

Strict two-phase locking is the classic safe policy — all locks precede all
unlocks — and the natural baseline against which the paper's policies trade
concurrency for structure.  Condition 1 of Theorem 1 shows immediately that
any 2PL system is safe; the simulator uses this policy both as a correctness
control and as the performance baseline the altruistic/DDAG benchmarks
compare against (long transactions under 2PL hold everything to the end,
which is precisely the problem altruistic locking attacks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.operations import LockMode, Operation
from ..core.steps import Entity, Step
from .base import (
    Access,
    DeleteEdge,
    DeleteNode,
    InsertEdge,
    InsertNode,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    Read,
    ScriptedSession,
    Write,
    access_steps,
    edge_entity,
)


def _classify(intents: Sequence[Intent], use_shared: bool) -> Tuple[List[Entity], List[Entity]]:
    """Split touched entities into (exclusive, shared) lock lists, in first
    use order."""
    exclusive: List[Entity] = []
    shared: List[Entity] = []

    def need_x(e: Entity) -> None:
        if e in shared:
            shared.remove(e)
        if e not in exclusive:
            exclusive.append(e)

    def need_s(e: Entity) -> None:
        if e not in shared and e not in exclusive:
            shared.append(e)

    for intent in intents:
        if isinstance(intent, Read):
            (need_s if use_shared else need_x)(intent.entity)
        elif isinstance(intent, (Access, Write)):
            need_x(intent.entity)
        elif isinstance(intent, InsertNode):
            need_x(intent.node)
            for p in intent.parents:
                need_x(edge_entity(p, intent.node))
                need_x(p)
        elif isinstance(intent, DeleteNode):
            need_x(intent.node)
        elif isinstance(intent, (InsertEdge, DeleteEdge)):
            need_x(edge_entity(intent.u, intent.v))
            need_x(intent.u)
            need_x(intent.v)
        else:
            raise TypeError(f"unknown intent {intent!r}")
    return exclusive, shared


def _data_steps(intent: Intent) -> Tuple[Step, ...]:
    """The data steps realising one intent."""
    if isinstance(intent, Access):
        return access_steps(intent.entity)
    if isinstance(intent, Read):
        return (Step(Operation.READ, intent.entity),)
    if isinstance(intent, Write):
        return (Step(Operation.WRITE, intent.entity),)
    if isinstance(intent, InsertNode):
        steps = [Step(Operation.INSERT, intent.node)]
        steps.extend(
            Step(Operation.INSERT, edge_entity(p, intent.node)) for p in intent.parents
        )
        return tuple(steps)
    if isinstance(intent, DeleteNode):
        return (Step(Operation.DELETE, intent.node),)
    if isinstance(intent, InsertEdge):
        return (Step(Operation.INSERT, edge_entity(intent.u, intent.v)),)
    if isinstance(intent, DeleteEdge):
        return (Step(Operation.DELETE, edge_entity(intent.u, intent.v)),)
    raise TypeError(f"unknown intent {intent!r}")


class TwoPhaseContext(PolicyContext):
    """Stateless context: strict 2PL needs no shared policy state."""

    def __init__(self, use_shared_locks: bool, conservative: bool):
        self.use_shared_locks = use_shared_locks
        self.conservative = conservative

    def begin(self, name: str, intents: Sequence[Intent]) -> PolicySession:
        exclusive, shared = _classify(intents, self.use_shared_locks)
        steps: List[Step] = []
        if self.conservative:
            # Acquire everything up front (deadlock-averse variant).
            steps.extend(Step(Operation.LOCK_EXCLUSIVE, e) for e in exclusive)
            steps.extend(Step(Operation.LOCK_SHARED, e) for e in shared)
            for intent in intents:
                steps.extend(_data_steps(intent))
        else:
            # Incremental strict 2PL: lock at first use, hold to commit —
            # the classic baseline whose long-transaction blocking the
            # altruistic policy was designed to relieve.
            locked: List[Entity] = []
            for intent in intents:
                for data in _data_steps(intent):
                    if data.entity not in locked:
                        mode = (
                            Operation.LOCK_SHARED
                            if data.entity in shared
                            else Operation.LOCK_EXCLUSIVE
                        )
                        steps.append(Step(mode, data.entity))
                        locked.append(data.entity)
                    steps.append(data)
        steps.extend(Step(Operation.UNLOCK_EXCLUSIVE, e) for e in exclusive)
        steps.extend(Step(Operation.UNLOCK_SHARED, e) for e in shared)
        return ScriptedSession(name, steps)


class TwoPhasePolicy(LockingPolicy):
    """Strict two-phase locking.

    ``conservative`` pre-acquires every lock before the first data step
    (deadlock-free against other conservative transactions); the default is
    the classic incremental variant (lock at first use, hold until commit).
    ``use_shared_locks`` grants READ intents shared locks; the default
    matches the paper's exclusive-only setting so the baseline is comparable
    with DDAG/altruistic/DTR runs.
    """

    def __init__(self, use_shared_locks: bool = False, conservative: bool = False):
        self.use_shared_locks = use_shared_locks
        self.conservative = conservative
        self.name = "2PL" + ("-S" if use_shared_locks else "") + (
            "-cons" if conservative else ""
        )
        self.modes = (
            (LockMode.EXCLUSIVE, LockMode.SHARED)
            if use_shared_locks
            else (LockMode.EXCLUSIVE,)
        )

    def create_context(self, **kwargs) -> TwoPhaseContext:
        return TwoPhaseContext(self.use_shared_locks, self.conservative)
