"""Locking policies: DDAG (Section 4), altruistic (Section 5), dynamic tree
(Section 6), the 2PL baseline, and deliberately unsafe controls."""

from .altruistic import (
    AltruisticContext,
    AltruisticPolicy,
    AltruisticSession,
    check_altruistic_schedule,
)
from .base import (
    Access,
    Admission,
    AdmissionResult,
    DeleteEdge,
    DeleteNode,
    InsertEdge,
    InsertNode,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    Read,
    ScriptedSession,
    Write,
    access_steps,
    edge_entity,
    intent_entities,
)
from .ddag import (
    DdagContext,
    DdagPolicy,
    DdagSession,
    Unlock,
    check_ddag_schedule,
)
from .dtr import (
    DtrContext,
    DtrPolicy,
    DtrSession,
    check_dtr_schedule,
    check_tree_locked,
)
from .two_phase import TwoPhaseContext, TwoPhasePolicy
from .unsafe import (
    BrokenAltruisticPolicy,
    BrokenDdagPolicy,
    FreeForAllPolicy,
)

__all__ = [
    "Access",
    "Admission",
    "AdmissionResult",
    "AltruisticContext",
    "AltruisticPolicy",
    "AltruisticSession",
    "BrokenAltruisticPolicy",
    "BrokenDdagPolicy",
    "DdagContext",
    "DdagPolicy",
    "DdagSession",
    "DeleteEdge",
    "DeleteNode",
    "DtrContext",
    "DtrPolicy",
    "DtrSession",
    "FreeForAllPolicy",
    "InsertEdge",
    "InsertNode",
    "Intent",
    "LockingPolicy",
    "PolicyContext",
    "PolicySession",
    "Read",
    "ScriptedSession",
    "TwoPhaseContext",
    "TwoPhasePolicy",
    "Unlock",
    "Write",
    "access_steps",
    "check_altruistic_schedule",
    "check_ddag_schedule",
    "check_dtr_schedule",
    "check_tree_locked",
    "edge_entity",
    "intent_entities",
]
