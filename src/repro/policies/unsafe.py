"""Deliberately unsafe locking policies — negative controls.

Every safety claim in the reproduction is paired with a control that *must*
fail: the verifier has to flag these policies as unsafe and produce canonical
witnesses for them, otherwise it is vacuous.  Three controls:

* :class:`FreeForAllPolicy` — lock each entity only around its own step
  (non-two-phase, no structure).  The textbook lost-update anomaly.
* :class:`BrokenDdagPolicy` — DDAG with rule **L5 removed**: transactions
  traverse the graph but may lock any node whenever they like, killing the
  dominator argument of Lemma 3.
* :class:`BrokenAltruisticPolicy` — altruistic locking with rule **AL2
  removed**: transactions may pick up donated items while holding arbitrary
  other items, so the wake-containment induction of Theorem 3 fails.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..core.operations import LockMode, Operation
from ..core.steps import Entity, Step
from ..exceptions import PolicyViolation
from .altruistic import AltruisticContext, AltruisticPolicy, AltruisticSession
from .base import (
    Access,
    AdmissionResult,
    Intent,
    LockingPolicy,
    PolicyContext,
    PolicySession,
    PROCEED,
    Read,
    ScriptedSession,
    Write,
    access_steps,
)
from .ddag import DdagContext, DdagPolicy, DdagSession


class FreeForAllContext(PolicyContext):
    """No shared state: each session simply wraps each op in a lock pair."""

    def begin(self, name: str, intents: Sequence[Intent]) -> PolicySession:
        steps: List[Step] = []
        for intent in intents:
            if isinstance(intent, Access):
                steps.append(Step(Operation.LOCK_EXCLUSIVE, intent.entity))
                steps.extend(access_steps(intent.entity))
                steps.append(Step(Operation.UNLOCK_EXCLUSIVE, intent.entity))
            elif isinstance(intent, Read):
                steps.append(Step(Operation.LOCK_EXCLUSIVE, intent.entity))
                steps.append(Step(Operation.READ, intent.entity))
                steps.append(Step(Operation.UNLOCK_EXCLUSIVE, intent.entity))
            elif isinstance(intent, Write):
                steps.append(Step(Operation.LOCK_EXCLUSIVE, intent.entity))
                steps.append(Step(Operation.WRITE, intent.entity))
                steps.append(Step(Operation.UNLOCK_EXCLUSIVE, intent.entity))
            else:
                raise PolicyViolation(
                    "FFA", f"free-for-all supports access/read/write, not {intent!r}"
                )
        return ScriptedSession(name, steps)


class FreeForAllPolicy(LockingPolicy):
    """Short locks around individual steps: well-formed and legal, yet
    trivially unsafe (any read-modify-write race interleaves)."""

    name = "FreeForAll"
    modes = (LockMode.EXCLUSIVE,)

    def create_context(self, **kwargs) -> FreeForAllContext:
        return FreeForAllContext()


class _LawlessDdagSession(DdagSession):
    """DDAG session with the L5 admission check disabled."""

    def admission(self) -> AdmissionResult:
        return PROCEED


class BrokenDdagContext(DdagContext):
    def begin(self, name: str, intents: Sequence[Intent]) -> DdagSession:
        session = _LawlessDdagSession(
            name, self, intents, auto_release=self.auto_release
        )
        self.sessions[name] = session
        return session


class BrokenDdagPolicy(DdagPolicy):
    """DDAG without rule L5 — the structural rule whose removal breaks
    Theorem 2's dominator argument.  Sessions skip the predecessor check
    entirely (their *plans* also ignore L5 ordering when scripted manually).
    """

    name = "DDAG-noL5"

    def create_context(self, dag=None, **kwargs) -> BrokenDdagContext:
        if dag is None:
            raise ValueError("BrokenDdagPolicy.create_context requires dag=...")
        return BrokenDdagContext(dag, auto_release=self.auto_release)


class _LawlessAltruisticSession(AltruisticSession):
    """Altruistic session with the AL2 wake check disabled."""

    def admission(self) -> AdmissionResult:
        return PROCEED


class BrokenAltruisticContext(AltruisticContext):
    def begin(self, name: str, intents: Sequence[Intent]) -> AltruisticSession:
        session = _LawlessAltruisticSession(
            name, self, intents, donate_immediately=self.donate_immediately
        )
        self.sessions[name] = session
        return session


class BrokenAltruisticPolicy(AltruisticPolicy):
    """Altruistic locking without rule AL2: donated items may be mixed with
    arbitrary other locks, so a transaction can slip 'between the phases' of
    a donor and orderings can cycle."""

    name = "Altruistic-noAL2"

    def create_context(self, **kwargs) -> BrokenAltruisticContext:
        return BrokenAltruisticContext(donate_immediately=self.donate_immediately)
