"""Text rendering of schedules, conflict graphs, DAGs and forests."""

from .ascii import (
    render_conflict_graph,
    render_dag,
    render_forest,
    render_lock_timeline,
    render_schedule,
    render_schedule_graph,
)

__all__ = [
    "render_conflict_graph",
    "render_dag",
    "render_forest",
    "render_lock_timeline",
    "render_schedule",
    "render_schedule_graph",
]
