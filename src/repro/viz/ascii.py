"""ASCII rendering of schedules and graphs, in the style of the paper's
figures.

Schedules render as the two-row grids of Figs. 2–5 (one row per transaction,
time left to right); serializability graphs as edge lists with marked
sources/sinks (Fig. 1); DAGs and forests as indented trees.  Everything is
pure text so benches and examples can print reproductions without plotting
dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.schedules import Schedule
from ..core.serializability import SerializabilityGraph, serializability_graph
from ..graphs.dag import RootedDag
from ..graphs.forest import Forest


def render_schedule(schedule: Schedule, order: Optional[Sequence[str]] = None) -> str:
    """Paper-style schedule figure (delegates to ``Schedule.format_rows``)."""
    return schedule.format_rows(order)


def render_conflict_graph(graph: SerializabilityGraph) -> str:
    """Render ``D(S)`` with its sources and sinks marked — the information
    Fig. 1 conveys about canonical schedules' shapes."""
    lines = [f"D(S): nodes={sorted(graph.nodes, key=repr)}"]
    for a, b in sorted(graph.edges, key=repr):
        lines.append(f"  {a} --> {b}")
    lines.append(f"  sources: {sorted(graph.sources(), key=repr)}")
    lines.append(f"  sinks:   {sorted(graph.sinks(), key=repr)}")
    return "\n".join(lines)


def render_schedule_graph(schedule: Schedule) -> str:
    """Shortcut: render the conflict graph of a schedule."""
    return render_conflict_graph(serializability_graph(schedule))


def render_dag(dag: RootedDag) -> str:
    """Indented rendering of a rooted DAG.  Nodes with several parents appear
    once per parent, with repeats marked ``*`` (DAG sharing)."""
    lines: List[str] = []
    seen: set = set()

    def walk(node, depth: int) -> None:
        marker = "*" if node in seen else ""
        lines.append("  " * depth + f"{node}{marker}")
        if node in seen:
            return
        seen.add(node)
        for child in sorted(dag.successors(node), key=repr):
            walk(child, depth + 1)

    walk(dag.root, 0)
    return "\n".join(lines)


def render_forest(forest: Forest) -> str:
    """Indented rendering of a database forest (one block per tree)."""
    lines: List[str] = []

    def walk(node, depth: int) -> None:
        lines.append("  " * depth + str(node))
        for child in sorted(forest.children(node), key=repr):
            walk(child, depth + 1)

    for root in sorted(forest.roots(), key=repr):
        walk(root, 0)
    return "\n".join(lines) if lines else "(empty forest)"


def render_lock_timeline(schedule: Schedule) -> str:
    """A per-entity timeline of lock holds: for each entity, the intervals
    (by event index) during which each transaction held it.  Handy when
    explaining why a schedule is or is not legal."""
    intervals: Dict[object, List[str]] = {}
    open_at: Dict[tuple, int] = {}
    for pos, event in enumerate(schedule.events):
        step = event.step
        if step.is_lock:
            open_at[(event.txn, step.entity)] = pos
        elif step.is_unlock:
            start = open_at.pop((event.txn, step.entity), None)
            if start is not None:
                intervals.setdefault(step.entity, []).append(
                    f"{event.txn}[{start}..{pos}]"
                )
    for (txn, entity), start in sorted(open_at.items(), key=repr):
        intervals.setdefault(entity, []).append(f"{txn}[{start}..end]")
    lines = []
    for entity in sorted(intervals, key=repr):
        lines.append(f"{entity}: " + "  ".join(intervals[entity]))
    return "\n".join(lines)
